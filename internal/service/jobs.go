package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle state of an async job.
type JobState string

// Job lifecycle: queued → running → done | failed. "queued" covers only
// the instant between Submit and the job goroutine picking the request
// up; "running" means the request is inside the service pipeline, which
// INCLUDES waiting for an admission slot — per-job gate position is not
// observable from outside Do, so operators triaging queue depth should
// read the service-wide Stats.Queued/InFlight counters, not job states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is the status of one async detection request.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Source and Response are set once State is JobDone.
	Source   Source    `json:"source,omitempty"`
	Response *Response `json:"response,omitempty"`
	// Error is set once State is JobFailed.
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
}

// maxRetainedJobs bounds the registry: once exceeded, the oldest finished
// jobs are pruned (a job still queued or running is never pruned).
const maxRetainedJobs = 4096

type jobRegistry struct {
	mu   sync.Mutex
	seq  uint64
	jobs map[string]*Job
	// order tracks insertion order for pruning.
	order []string
	// wg tracks in-flight job goroutines for graceful drain.
	wg sync.WaitGroup
}

func (r *jobRegistry) init() {
	r.jobs = make(map[string]*Job)
}

// Submit enqueues req as an async job and returns its ID immediately. The
// job runs through the same admission/cache/single-flight path as Do; its
// result is retrievable via Job until pruned.
func (s *Service) Submit(req *Request) string {
	r := &s.jobs
	r.mu.Lock()
	r.seq++
	id := fmt.Sprintf("job-%d", r.seq)
	job := &Job{ID: id, State: JobQueued, Created: time.Now().UTC()}
	r.jobs[id] = job
	r.order = append(r.order, id)
	r.prune()
	r.mu.Unlock()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		// Panic fence: Do contains detector panics itself, but a crash
		// anywhere in this goroutine would otherwise kill the whole
		// process (no recovering caller). The job fails; the server
		// lives.
		defer func() {
			if rec := recover(); rec != nil {
				r.mu.Lock()
				defer r.mu.Unlock()
				job.Finished = time.Now().UTC()
				job.State = JobFailed
				job.Error = fmt.Sprintf("job panicked: %v", rec)
			}
		}()
		r.mu.Lock()
		job.State = JobRunning
		r.mu.Unlock()
		resp, src, err := s.Do(context.Background(), req)
		r.mu.Lock()
		defer r.mu.Unlock()
		job.Finished = time.Now().UTC()
		if err != nil {
			job.State = JobFailed
			job.Error = err.Error()
			return
		}
		job.State = JobDone
		job.Source = src
		job.Response = resp
	}()
	return id
}

// DrainJobs blocks until every submitted job goroutine has finished, or
// ctx ends. Graceful shutdown calls this after admission has stopped so
// accepted async work completes before the process exits.
func (s *Service) DrainJobs(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Job returns a snapshot of the job's status.
func (s *Service) Job(id string) (Job, bool) {
	r := &s.jobs
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// prune drops the oldest finished jobs beyond maxRetainedJobs. Caller
// holds r.mu.
func (r *jobRegistry) prune() {
	if len(r.jobs) <= maxRetainedJobs {
		return
	}
	kept := r.order[:0]
	for _, id := range r.order {
		job := r.jobs[id]
		if job == nil {
			continue
		}
		if len(r.jobs) > maxRetainedJobs && (job.State == JobDone || job.State == JobFailed) {
			delete(r.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
}
