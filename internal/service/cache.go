package service

import (
	"container/list"

	"repro/internal/graph"
)

// cacheKey identifies one cached verdict. The fingerprint pins the graph
// structure; the remaining fields pin every parameter that can change a
// detector's verdict. Iterations are deliberately absent: the entry
// records the budget it has accumulated, so requests with different
// budgets share an entry (see entry.serves). For the deterministic
// detector the seed and schedule are normalized away — they cannot affect
// the verdict.
type cacheKey struct {
	fp        graph.Fingerprint
	algo      Algo
	k         int
	threshold int
	eps       float64
	pipelined bool
	seed      uint64
}

func keyFor(req *Request, fp graph.Fingerprint) cacheKey {
	key := cacheKey{
		fp:        fp,
		algo:      req.Algo,
		k:         req.K,
		threshold: req.Threshold,
		eps:       req.Eps,
		pipelined: req.Pipelined,
		seed:      req.Seed,
	}
	if req.Algo == AlgoDet {
		key.seed = 0
		key.pipelined = false
	}
	if req.Algo == AlgoDet || req.Algo == AlgoOdd {
		key.eps = 0 // no ε parameter in these detectors
	}
	return key
}

// entry is one cached verdict plus its accumulated trial budget.
type entry struct {
	resp *Response
	// budget is the cumulative number of randomized trials this entry has
	// exhausted without a detection; meaningless once resp.Found or for
	// the deterministic detector.
	budget int
	// warmed marks an entry seeded by the corpus warm-start path at
	// mutation time rather than by a request; hits on it count as
	// warm_hits.
	warmed bool
}

// serves reports whether the entry can answer a request for `iterations`
// trials without any computation: always for the deterministic detector
// and for permanent Found verdicts, otherwise only when the accumulated
// not-found budget covers the request.
func (e *entry) serves(algo Algo, iterations int) bool {
	if algo == AlgoDet || e.resp.Found {
		return true
	}
	return iterations <= e.budget
}

// lru is a size-bounded LRU map from cacheKey to entry. Not safe for
// concurrent use; the Service guards it with its own mutex.
type lru struct {
	cap   int
	ll    *list.List // front = most recent; values are *lruItem
	items map[cacheKey]*list.Element
}

type lruItem struct {
	key cacheKey
	ent *entry
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element, capacity)}
}

// get returns the entry for key (marking it most-recently-used) or nil.
func (c *lru) get(key cacheKey) *entry {
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).ent
}

// peek returns the entry for key WITHOUT touching recency — the warm-start
// path probes for existing child entries and must not promote them.
func (c *lru) peek(key cacheKey) *entry {
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	return el.Value.(*lruItem).ent
}

// put inserts or replaces the entry for key, evicting the least-recently
// used entry when over capacity.
func (c *lru) put(key cacheKey, ent *entry) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, ent: ent})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

// len returns the number of cached entries.
func (c *lru) len() int { return c.ll.Len() }
