package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// Algo names a detector family servable by the Service.
type Algo string

// The servable detector families. They are exactly the classical
// detectors whose results share the Response shape; the quantum detectors
// report a different cost model (charged rounds) and stay on the direct
// facade path.
const (
	// AlgoEven is Algorithm 1: C_{2k}-freeness, randomized, one-sided.
	AlgoEven Algo = "even"
	// AlgoBounded is the F_{2k} bounded-length family detector.
	AlgoBounded Algo = "bounded"
	// AlgoOdd is the Section 3.4 C_{2k+1} detector (classical repetition).
	AlgoOdd Algo = "odd"
	// AlgoDet is the deterministic broadcast-CONGEST detector
	// (arXiv:2412.11195): seedless, verdict a pure function of the graph.
	AlgoDet Algo = "det"
)

// randomized reports whether the algo draws randomness (and therefore
// carries a trial budget and a seed in its cache key).
func (a Algo) randomized() bool { return a != AlgoDet }

// ParseAlgo resolves the wire names (including aliases) to an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "even", "classical", "":
		return AlgoEven, nil
	case "bounded":
		return AlgoBounded, nil
	case "odd":
		return AlgoOdd, nil
	case "det", "deterministic":
		return AlgoDet, nil
	}
	return "", fmt.Errorf("service: unknown algo %q (want even|bounded|odd|det)", s)
}

// Request is one detection request. Graph is required; the remaining
// fields mirror the facade's Detect* options.
type Request struct {
	Graph *graph.Graph
	Algo  Algo
	// K is the half cycle length: detect C_2k (AlgoOdd: C_{2k+1}).
	K int
	// Seed is the master random seed of randomized algos (ignored and
	// normalized to 0 in the cache key for AlgoDet).
	Seed uint64
	// Iterations is the trial budget of randomized algos and must be ≥ 1:
	// a service request states its budget explicitly (the faithful
	// iteration counts are astronomically large for k ≥ 3, so an implicit
	// "faithful" default would be an availability hazard). Ignored for
	// AlgoDet, which runs a single session.
	Iterations int
	// Threshold overrides the congestion threshold τ (0 = faithful).
	Threshold int
	// Eps is the one-sided error probability of AlgoEven/AlgoBounded
	// (0 = the default 1/3); it parameterizes τ and p exactly as the
	// direct Detect path's WithError does, and is part of the cache key.
	// AlgoOdd and AlgoDet take no ε and normalize it away.
	Eps float64
	// Pipelined selects the pipelined color-BFS schedule (AlgoEven and
	// AlgoBounded only).
	Pipelined bool
	// Deadline bounds this request's total time in the service (queue
	// wait included): 0 adopts Config.DefaultDeadline, and any value is
	// capped by Config.MaxDeadline. An expired deadline cancels the
	// engine session cooperatively and surfaces as ErrDeadline.
	Deadline time.Duration
	// Trace, when non-nil, accumulates per-stage wall-clock time for
	// THIS request (validate → queue wait → batch linger → engine →
	// cache install) regardless of Config.Observe — tracing is a
	// per-request opt-in. The Response body is untouched; callers
	// surface the trace themselves (the HTTP server's opt-in `trace`
	// field and X-Evencycle-Stage-* headers). Leave nil on shared
	// Request templates: the tracer is written by whichever goroutine
	// computes the stage, including a fused batch's leader.
	Trace *obs.Trace
}

// Response is the cached, deterministic portion of a detection answer: it
// contains the verdict and domain costs but no wall-clock or serve-path
// metadata, so repeated deterministic-mode requests serialize to
// byte-identical responses no matter how they were served.
type Response struct {
	Algo          Algo           `json:"algo"`
	K             int            `json:"k"`
	Fingerprint   string         `json:"fingerprint"`
	Found         bool           `json:"found"`
	Witness       []graph.NodeID `json:"witness,omitempty"`
	FoundLen      int            `json:"found_len,omitempty"`
	Rounds        int            `json:"rounds"`
	Messages      int64          `json:"messages"`
	Bits          int64          `json:"bits"`
	MaxCongestion int            `json:"max_congestion"`
	Overflowed    bool           `json:"overflowed"`
	// Iterations is the cumulative trial budget behind this verdict (0
	// for the deterministic detector's single session).
	Iterations int `json:"iterations"`
}

// Source says how a request was served.
type Source string

// Serve paths, from cheapest to most expensive.
const (
	// SourceCache: pure cache hit — no engine work, no queuing.
	SourceCache Source = "cache"
	// SourceCoalesced: waited on an identical in-flight computation.
	SourceCoalesced Source = "coalesced"
	// SourceAmplified: a cached not-found entry ran only the additional
	// trials the request asked for beyond the recorded budget.
	SourceAmplified Source = "amplified"
	// SourceComputed: full computation.
	SourceComputed Source = "computed"
)

// Config tunes a Service. The zero value gets sensible defaults.
type Config struct {
	// Slots is the number of concurrent computations admitted (the worker
	// pool bound); 0 means GOMAXPROCS.
	Slots int
	// MaxQueue bounds the admission queue: requests that would queue
	// deeper are rejected with ErrOverloaded. 0 means 1024; negative
	// means unbounded.
	MaxQueue int
	// CacheEntries is the LRU verdict-cache capacity; 0 means 1024.
	CacheEntries int
	// Parallel is the per-request trial parallelism handed to the
	// detectors (0/1 sequential, negative GOMAXPROCS). The pool bound
	// applies to requests; Parallel spends each request's slot wider.
	Parallel int
	// Workers and Shards configure each engine session (see
	// congest.Engine); 0 keeps the engine defaults.
	Workers int
	Shards  int
	// BatchSize caps the fused miss-path batch: up to this many
	// compatible cache misses share one engine session on the disjoint
	// union of their graphs. 0 means 8; ≤ 1 disables batching (every miss
	// computes solo, the pre-batching behavior).
	BatchSize int
	// BatchLinger is how long an under-full batch waits for joiners
	// before dispatching — the latency a lone miss pays to offer itself
	// for fusion. 0 means 2ms; negative dispatches immediately.
	BatchLinger time.Duration
	// DefaultDeadline bounds requests that state no deadline of their
	// own; 0 leaves them unbounded. MaxDeadline caps every request's
	// deadline (including the default); 0 means no cap. Earliest wins
	// against any deadline already on the caller's context.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// Persist, when set, is the durable corpus store backing the mutation
	// API: New preloads the recovered corpus from it, and CreateCorpus /
	// AddCorpusEdges / DeleteCorpus journal through it before a mutation
	// becomes visible. Nil keeps the corpus memory-only. The Service takes
	// over mutation of the store but not its lifecycle: the owner still
	// closes it after the service drains.
	Persist *store.Store
	// Observe arms latency observation: serve-path and stage-duration
	// histograms, engine session round/wall histograms, gate wait and
	// batch fill distributions, and store fsync/append/compaction
	// timings. Counters (and the /metrics endpoint itself) work either
	// way. Disarmed (the zero value), the request hot path performs no
	// clock reads and no observation hooks are installed anywhere —
	// determinism fingerprints and zero-alloc pins are untouched, the
	// same contract as congest.Engine.Observe.
	Observe bool
}

// ErrOverloaded is returned when the admission queue is full. It wraps
// ErrShed — queue overflow is one way of shedding load — so both map to
// the same retryable HTTP status.
var ErrOverloaded = fmt.Errorf("admission queue full: %w", ErrShed)

// ErrUnknownCorpus is returned (wrapped) by Resolve when a request names
// a corpus graph that is not registered; the HTTP server maps it to 404.
var ErrUnknownCorpus = fmt.Errorf("service: unknown corpus graph")

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Requests counts every Do call; the four serve-path counters
	// partition the successful ones.
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Amplified int64 `json:"amplified"`
	Computed  int64 `json:"computed"`
	// Errors counts failed requests; the five counters below attribute
	// them to failure domains. Rejected is the queue-full (ErrOverloaded)
	// subset and Shed the deadline-aware admission rejections; Deadline-
	// Exceeded and Cancelled are requests that died after admission; and
	// Panics counts contained detector/batch-leader crashes (ErrInternal).
	Errors           int64 `json:"errors"`
	Rejected         int64 `json:"rejected"`
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Cancelled        int64 `json:"cancelled"`
	Panics           int64 `json:"panics"`
	// BatchesSkipped counts fused batches whose every waiter abandoned
	// them before dispatch: their engine run was skipped entirely.
	BatchesSkipped int64 `json:"batches_skipped"`
	// Mutations counts corpus mutations that changed a graph;
	// NoopMutations the all-duplicate batches that changed nothing (and
	// journaled nothing). WarmStarts counts cached parent verdicts carried
	// to child fingerprints at mutation time, Fallbacks the subset whose
	// localization precondition failed and ran a full detection instead,
	// and WarmHits the cache hits later served from warmed entries.
	// LastMutationParent/Child are the fingerprints of the most recent
	// parent→child lineage edge.
	Mutations          int64  `json:"mutations"`
	NoopMutations      int64  `json:"noop_mutations"`
	WarmStarts         int64  `json:"warm_starts"`
	WarmHits           int64  `json:"warm_hits"`
	Fallbacks          int64  `json:"fallbacks"`
	LastMutationParent string `json:"last_mutation_parent,omitempty"`
	LastMutationChild  string `json:"last_mutation_child,omitempty"`
	// MeanSessionMS is the EWMA of engine-session wall time that the
	// deadline-aware admission check estimates queue wait from.
	MeanSessionMS float64 `json:"mean_session_ms"`
	// EngineSessions counts engine sessions actually run — solo
	// computations plus ONE per fused batch: the "work actually done"
	// number that cache hits, coalescing and batching save. (Before the
	// batched miss path this equaled computed + amplified; now it can be
	// smaller, since a fused session serves a whole batch.)
	EngineSessions int64 `json:"engine_sessions"`
	// FusedSessions and SoloSessions split EngineSessions by path;
	// FusedRequests counts the requests those fused sessions served.
	FusedSessions int64 `json:"fused_sessions"`
	SoloSessions  int64 `json:"solo_sessions"`
	FusedRequests int64 `json:"fused_requests"`
	// BatchesFormed counts miss-path batches dispatched (any size);
	// MeanBatchSize and MaxBatchSize describe their size distribution.
	BatchesFormed int64   `json:"batches_formed"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MaxBatchSize  int64   `json:"max_batch_size"`
	// CacheEntries is the current verdict-cache size, InFlight the
	// computations currently holding pool slots, Queued the admission
	// queue length.
	CacheEntries int `json:"cache_entries"`
	InFlight     int `json:"in_flight"`
	Queued       int `json:"queued"`
}

// Service is a concurrent, caching detection server. Create with New;
// safe for concurrent use.
type Service struct {
	cfg  Config
	gate *sched.Gate

	mu       sync.Mutex
	cache    *lru
	inflight map[cacheKey]*call

	corpusMu sync.RWMutex
	corpus   map[string]*graph.Graph

	jobs jobRegistry

	batcher *sched.Batcher[compatKey, *fuseItem, fuseOut]

	// metrics holds every counter (registry-backed; see metrics.go) —
	// the fields promote, so s.requests.Add(1) reads as before.
	*metrics
	// observe mirrors Config.Observe: true arms the latency/stage
	// timers on the request path.
	observe bool
	// engineObs is handed to every detector run as Options.Observe when
	// armed (nil when disarmed — the engine then skips its clock reads).
	engineObs func(rounds int, wall time.Duration)

	// lineageMu guards the most recent parent→child fingerprint edge a
	// corpus mutation created (surfaced in Stats).
	lineageMu             sync.Mutex
	lastParent, lastChild graph.Fingerprint

	// meanSessionNs is an EWMA (α = 1/8) of engine-session wall time,
	// feeding the admission check's queue-wait estimate.
	meanSessionNs atomic.Int64

	// computeHook, when set, replaces the detector dispatch — tests use it
	// to block and count computations deterministically. Never set in
	// production paths.
	computeHook func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error)
}

// call is one in-flight computation; followers wait on done.
type call struct {
	done chan struct{}
	// targetIter is the budget the computation will have accumulated when
	// it finishes (entry budget + delta); followers needing no more than
	// this coalesce onto it.
	targetIter int
	resp       *Response
	err        error
}

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchLinger == 0 {
		cfg.BatchLinger = 2 * time.Millisecond
	}
	s := &Service{
		cfg:      cfg,
		gate:     sched.NewGate(cfg.Slots),
		cache:    newLRU(cfg.CacheEntries),
		inflight: make(map[cacheKey]*call),
		corpus:   make(map[string]*graph.Graph),
		metrics:  newMetrics(),
		observe:  cfg.Observe,
	}
	if cfg.Persist != nil {
		// Preload the recovered durable corpus: every graph acknowledged
		// before the last shutdown or crash is servable before the first
		// request arrives.
		for _, name := range cfg.Persist.Names() {
			if g, ok := cfg.Persist.Get(name); ok {
				s.corpus[name] = g
			}
		}
	}
	if cfg.BatchSize > 1 {
		s.batcher = &sched.Batcher[compatKey, *fuseItem, fuseOut]{
			MaxBatch: cfg.BatchSize,
			Linger:   cfg.BatchLinger,
			// Bound the fused union well below the wire format's node cap
			// (and below sizes where one giant component would serialize the
			// whole batch behind itself).
			Weight:    func(it *fuseItem) int { return it.req.Graph.NumNodes() },
			MaxWeight: congest.MaxNodes / 16,
			Exec:      s.execBatch,
		}
	}
	s.jobs.init()

	// State gauges and derived totals are registered unconditionally so
	// the exposition's family set does not depend on configuration;
	// families whose source is absent (no store, no batcher) read 0.
	s.reg.GaugeFunc("evencycle_gate_in_use", "Admission slots currently held.",
		func() int64 { return int64(s.gate.InUse()) })
	s.reg.GaugeFunc("evencycle_gate_waiting", "Requests queued for an admission slot.",
		func() int64 { return int64(s.gate.Waiting()) })
	s.reg.GaugeFunc("evencycle_cache_entries", "Verdict-cache entries resident.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.cache.len())
	})
	s.reg.GaugeFunc("evencycle_mean_session_ns",
		"EWMA of engine-session wall time feeding the admission estimate (nanoseconds).",
		s.meanSessionNs.Load)
	s.reg.CounterFunc("evencycle_batches_skipped_total",
		"Fused batches skipped because every waiter abandoned them.", func() int64 {
			if s.batcher == nil {
				return 0
			}
			return s.batcher.Skipped()
		})
	s.reg.GaugeFunc("evencycle_store_wal_bytes", "Corpus journal size on disk.", func() int64 {
		if cfg.Persist == nil {
			return 0
		}
		return cfg.Persist.Stats().WALBytes
	})
	s.reg.GaugeFunc("evencycle_store_graphs", "Durable corpus graphs resident.", func() int64 {
		if cfg.Persist == nil {
			return 0
		}
		return int64(cfg.Persist.Stats().Graphs)
	})
	s.reg.CounterFunc("evencycle_store_appends_total",
		"Corpus mutations journaled by this process.", func() int64 {
			if cfg.Persist == nil {
				return 0
			}
			return cfg.Persist.Stats().Appended
		})
	s.reg.CounterFunc("evencycle_store_compactions_total",
		"Corpus snapshot compactions taken by this process.", func() int64 {
			if cfg.Persist == nil {
				return 0
			}
			return cfg.Persist.Stats().Compactions
		})

	if cfg.Observe {
		// Arm the per-layer hooks. Each is one histogram observation —
		// two atomic adds — per event; none are installed when disarmed,
		// so the zero-value Config costs only the nil checks the hooks'
		// owners already perform.
		s.gate.Observe = func(w time.Duration) { s.gateWait.ObserveDuration(w) }
		if s.batcher != nil {
			s.batcher.Observe = func(size int) { s.batchFill.Observe(int64(size)) }
		}
		s.engineObs = func(rounds int, wall time.Duration) {
			s.engineRounds.Observe(int64(rounds))
			s.engineWall.ObserveDuration(wall)
		}
		if cfg.Persist != nil {
			cfg.Persist.SetObserver(&store.Observer{
				Append:  func(n int) { s.storeAppendBytes.Observe(int64(n)) },
				Fsync:   func(d time.Duration) { s.storeFsync.ObserveDuration(d) },
				Compact: func(d time.Duration) { s.storeCompact.ObserveDuration(d) },
			})
		}
	}
	return s
}

// validate rejects malformed requests before they consume a pool slot,
// and normalizes req.Algo to its canonical name (aliases like
// "classical" or "deterministic" would otherwise slip past the
// string-keyed cache and dispatch switches).
func validate(req *Request) error {
	if req.Graph == nil {
		return fmt.Errorf("service: request has no graph")
	}
	algo, err := ParseAlgo(string(req.Algo))
	if err != nil {
		return err
	}
	req.Algo = algo
	minK := 2
	if req.Algo == AlgoOdd {
		minK = 1
	}
	if req.K < minK {
		return fmt.Errorf("service: algo %s needs k ≥ %d, got %d", req.Algo, minK, req.K)
	}
	if req.Algo.randomized() && req.Iterations < 1 {
		return fmt.Errorf("service: algo %s requires an explicit trial budget (iterations ≥ 1), got %d",
			req.Algo, req.Iterations)
	}
	if req.Threshold < 0 {
		return fmt.Errorf("service: negative threshold %d", req.Threshold)
	}
	if req.Eps != 0 && (req.Eps <= 0 || req.Eps >= 1) {
		return fmt.Errorf("service: ε = %v outside (0,1)", req.Eps)
	}
	if req.Deadline < 0 {
		return fmt.Errorf("service: negative deadline %v", req.Deadline)
	}
	return nil
}

// requestContext applies the request's deadline — or the server default
// when the request states none — capped by Config.MaxDeadline.
// context.WithTimeout keeps an earlier deadline already on ctx, so the
// effective deadline is always the earliest of caller, request and cap.
func (s *Service) requestContext(ctx context.Context, req *Request) (context.Context, context.CancelFunc) {
	d := req.Deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// admissible is the deadline-aware admission check: a request whose
// remaining deadline cannot cover the estimated queue wait is shed
// immediately — failing in microseconds instead of timing out after
// queuing — leaving the queue to requests that can still make it.
// Called with s.mu held (the same ordering as the MaxQueue check).
func (s *Service) admissible(ctx context.Context) error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return fmt.Errorf("%w: deadline expired before admission", ErrDeadline)
	}
	if wait := s.estimatedQueueWait(); wait > remaining {
		return fmt.Errorf("%w: estimated queue wait %v exceeds remaining deadline %v", ErrShed, wait, remaining)
	}
	return nil
}

// estimatedQueueWait predicts how long a newly queued request waits for
// an admission slot: queue-ahead-of-us divided by the slot count, times
// the EWMA session duration. Zero until the first session completes —
// an idle or cold service never sheds on an estimate it doesn't have.
func (s *Service) estimatedQueueWait() time.Duration {
	mean := s.meanSessionNs.Load()
	if mean == 0 {
		return 0
	}
	waiting := int64(s.gate.Waiting())
	return time.Duration(waiting / int64(s.gate.Slots()) * mean)
}

// noteSessionDuration folds one engine-session wall time into the EWMA.
func (s *Service) noteSessionDuration(d time.Duration) {
	n := d.Nanoseconds()
	for {
		old := s.meanSessionNs.Load()
		next := n
		if old != 0 {
			next = old + (n-old)/8
		}
		if s.meanSessionNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Info describes how a request was served beyond its Source.
type Info struct {
	Source Source
	// Batch is the size of the engine batch the request was computed in:
	// 1 for a solo session, > 1 when the request was fused with
	// concurrent compatible misses, 0 when no session ran for it (cache
	// hits, coalesced waits, errors).
	Batch int
}

// Do serves one detection request: cache hit, coalesce onto an identical
// in-flight computation, amplify a cached not-found entry, or compute —
// possibly fused with concurrent compatible misses (see Config.BatchSize).
// The returned Source says which path served it. ctx cancellation is
// honored while queued for admission or while waiting on another
// request's computation; a computation that has started always runs to
// completion (its result is cached for everyone).
func (s *Service) Do(ctx context.Context, req *Request) (*Response, Source, error) {
	resp, info, err := s.DoInfo(ctx, req)
	return resp, info.Source, err
}

// DoInfo is Do with serve-path metadata (batch size) for callers that
// surface it, like the HTTP server's X-Evencycle-Batch header.
func (s *Service) DoInfo(ctx context.Context, req *Request) (*Response, Info, error) {
	s.requests.Add(1)
	// Work on a copy: validate normalizes the algo name, and mutating the
	// caller's Request would make sharing one Request across goroutines a
	// data race.
	local := *req
	req = &local
	// timed arms the stage/latency clock reads: for every request of an
	// observed service, or for the single request that opted into a
	// trace. Disarmed and untraced, this path reads no clocks at all.
	timed := s.observe || req.Trace != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	if err := validate(req); err != nil {
		s.errors.Add(1)
		return nil, Info{}, err
	}
	if timed {
		s.noteStage(req.Trace, obs.StageValidate, time.Since(t0))
	}
	ctx, cancelCtx := s.requestContext(ctx, req)
	defer cancelCtx()
	fp := req.Graph.Fingerprint()
	key := keyFor(req, fp)

	for {
		s.mu.Lock()
		if ent := s.cache.get(key); ent != nil && ent.serves(req.Algo, req.Iterations) {
			resp := ent.resp
			warmed := ent.warmed
			s.mu.Unlock()
			s.hits.Add(1)
			if warmed {
				s.warmHits.Add(1)
			}
			if s.observe {
				s.durHit.ObserveDuration(time.Since(t0))
			}
			return resp, Info{Source: SourceCache}, nil
		}
		if c, ok := s.inflight[key]; ok {
			// A follower coalesces when the in-flight computation's budget
			// covers its own (a Found result covers any budget; the check
			// below re-verifies after completion).
			covered := req.Algo == AlgoDet || c.targetIter >= req.Iterations
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				err := classifyErr(ctx, ctx.Err())
				s.countError(err)
				return nil, Info{}, err
			}
			if c.err == nil && (covered || c.resp.Found) {
				s.coalesced.Add(1)
				if s.observe {
					s.durCoalesced.ObserveDuration(time.Since(t0))
				}
				return c.resp, Info{Source: SourceCoalesced}, nil
			}
			// Leader failed, or its budget was short of ours: re-enter.
			continue
		}

		// We are the leader. Snapshot the prior entry (if any) for
		// amplification before releasing the lock; the in-flight map keeps
		// other leaders for this key out until finish().
		prior := s.cache.get(key)
		c := &call{done: make(chan struct{}), targetIter: req.Iterations}
		s.inflight[key] = c
		var admit error
		if s.cfg.MaxQueue >= 0 && s.gate.Waiting() >= s.cfg.MaxQueue {
			admit = ErrOverloaded
		} else {
			admit = s.admissible(ctx)
		}
		if admit != nil {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		if admit != nil {
			c.err = admit
			close(c.done)
			s.countError(admit)
			return nil, Info{}, admit
		}

		resp, amplified, batch, err := s.dispatch(ctx, req, fp, key, prior)
		if err != nil {
			err = classifyErr(ctx, err)
			s.finish(key, c, nil, err)
			s.countError(err)
			return nil, Info{}, err
		}
		source := SourceComputed
		if amplified {
			source = SourceAmplified
			s.amplified.Add(1)
		} else {
			s.computed.Add(1)
		}
		var tInstall time.Time
		if timed {
			tInstall = time.Now()
		}
		s.mu.Lock()
		s.cache.put(key, &entry{resp: resp, budget: req.Iterations})
		s.mu.Unlock()
		if timed {
			s.noteStage(req.Trace, obs.StageCacheInstall, time.Since(tInstall))
		}
		s.finish(key, c, resp, nil)
		if s.observe {
			s.durFor(source, batch).ObserveDuration(time.Since(t0))
		}
		return resp, Info{Source: source, Batch: batch}, nil
	}
}

// dispatch runs the leader's computation: through the batcher when the
// request is fusable and batching is on, otherwise solo under its own
// admission slot. It returns the batch size the work ran in.
func (s *Service) dispatch(ctx context.Context, req *Request, fp graph.Fingerprint, key cacheKey, prior *entry) (*Response, bool, int, error) {
	timed := s.observe || req.Trace != nil
	if s.batcher == nil || !fusable(req.Algo) || s.computeHook != nil {
		var tq time.Time
		if timed {
			tq = time.Now()
		}
		if err := s.gate.Acquire(ctx); err != nil {
			return nil, false, 0, err
		}
		defer s.gate.Release()
		start := time.Now()
		if timed {
			s.noteStage(req.Trace, obs.StageQueueWait, start.Sub(tq))
		}
		resp, amplified, err := s.computeGuarded(ctx, req, fp, prior)
		if err == nil {
			s.noteSessionDuration(time.Since(start))
			s.soloSessions.Add(1)
		}
		if timed {
			s.noteStage(req.Trace, obs.StageEngine, time.Since(start))
		}
		return resp, amplified, 1, err
	}
	item := &fuseItem{req: req, fp: fp, key: key, prior: prior}
	if timed {
		item.enqueued = time.Now()
	}
	out, batch, err := s.batcher.Do(ctx, compatFor(req), item)
	if err != nil {
		// ctx expired while waiting for the batch (the batch itself still
		// computes and caches the item), or the batcher misbehaved.
		return nil, false, 0, err
	}
	return out.resp, out.amplified, batch, out.err
}

// finish publishes the call result and clears the in-flight slot.
func (s *Service) finish(key cacheKey, c *call, resp *Response, err error) {
	c.resp, c.err = resp, err
	s.mu.Lock()
	if s.inflight[key] == c {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
	close(c.done)
}

// amplifySalt separates the derived seeds of amplification runs from
// every other consumer of sched.Tag.
const amplifySalt = 0x5e2f1ce

// computeGuarded is compute under the solo-path panic fence: a detector
// crash (real or injected) converts to ErrInternal instead of unwinding
// through DoInfo with the in-flight entry still registered — which
// would hang every coalesced follower forever. The admission slot is
// released by dispatch's defer either way, and nothing is cached.
func (s *Service) computeGuarded(ctx context.Context, req *Request, fp graph.Fingerprint, prior *entry) (resp *Response, amplified bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp, amplified, err = nil, false, fmt.Errorf("%w: detector panicked: %v", ErrInternal, r)
		}
	}()
	if faultpoint.Enabled() {
		faultpoint.Crash(faultpoint.DetectorPanic)
	}
	return s.compute(ctx, req, fp, prior)
}

// compute runs the detector, with the seed derivation shared by the solo
// and fused paths (see runSeed). When prior is a not-found entry with
// budget B < req.Iterations, only the missing req.Iterations-B trials
// run, with a seed derived from (run seed, B) so the accumulated trial
// history never repeats a coloring; costs accumulate into the returned
// response. The reported second value is true on that amplification path.
//
// ctx cancellation propagates into the engine as a cooperative
// CancelFlag polled at round boundaries: an abandoned or timed-out
// request stops mid-session with congest.ErrCanceled (classified by the
// caller) instead of running to quiescence. Detached paths (fused
// batches, async jobs) pass a context with a nil Done channel, which
// arms nothing and leaves transcripts untouched.
func (s *Service) compute(ctx context.Context, req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
	var cancel *congest.CancelFlag
	if ctx.Done() != nil {
		cancel = &congest.CancelFlag{}
		stop := congest.WatchContext(ctx, cancel)
		defer stop()
	}
	if s.computeHook != nil {
		return s.computeHook(req, fp, prior)
	}
	iterations := req.Iterations
	seed := runSeed(req, fp)
	amplify := prior != nil && !prior.resp.Found && req.Algo.randomized()
	if amplify {
		iterations = req.Iterations - prior.budget
		seed = sched.Tag(seed, amplifySalt, uint64(prior.budget))
	}
	resp := &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}
	switch req.Algo {
	case AlgoEven, AlgoBounded:
		opt := core.Options{
			Eps:           req.Eps,
			MaxIterations: iterations,
			Threshold:     req.Threshold,
			Seed:          seed,
			Workers:       s.cfg.Workers,
			Shards:        s.cfg.Shards,
			Parallel:      s.cfg.Parallel,
			Pipelined:     req.Pipelined,
			Cancel:        cancel,
			Observe:       s.engineObs,
		}
		if req.Algo == AlgoEven {
			res, err := core.DetectEvenCycle(req.Graph, req.K, opt)
			if err != nil {
				return nil, false, err
			}
			fillEven(resp, req.K, res)
		} else {
			res, err := core.DetectBoundedCycle(req.Graph, req.K, opt)
			if err != nil {
				return nil, false, err
			}
			resp.Found = res.Found
			resp.Witness = res.Witness
			resp.FoundLen = res.FoundLen
			resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
			resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
			resp.Iterations = res.IterationsRun
		}
	case AlgoOdd:
		res, err := lowprob.DetectOdd(req.Graph, req.K, lowprob.OddOptions{
			MaxIterations: iterations,
			Threshold:     req.Threshold,
			Seed:          seed,
			Workers:       s.cfg.Workers,
			Shards:        s.cfg.Shards,
			Parallel:      s.cfg.Parallel,
			SeedProb:      1,
			Cancel:        cancel,
			Observe:       s.engineObs,
		})
		if err != nil {
			return nil, false, err
		}
		resp.Found = res.Found
		resp.Witness = res.Witness
		if res.Found {
			resp.FoundLen = 2*req.K + 1
		}
		resp.Rounds, resp.Messages = res.Rounds, res.Messages
		resp.Iterations = res.IterationsRun
	case AlgoDet:
		res, err := deterministic.Detect(req.Graph, req.K, deterministic.Options{
			Threshold: req.Threshold,
			Workers:   s.cfg.Workers,
			Shards:    s.cfg.Shards,
			Cancel:    cancel,
			Observe:   s.engineObs,
		})
		if err != nil {
			return nil, false, err
		}
		fillDet(resp, req.K, res)
	default:
		return nil, false, fmt.Errorf("service: unknown algo %q", req.Algo)
	}
	if amplify {
		accumulatePrior(resp, prior.resp)
	}
	return resp, amplify, nil
}

// fillEven copies an Algorithm 1 result into a response (shared by the
// solo and fused serve paths, which must produce identical responses).
func fillEven(resp *Response, k int, res *core.Result) {
	resp.Found = res.Found
	resp.Witness = res.Witness
	if res.Found {
		resp.FoundLen = 2 * k
	}
	resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
	resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
	resp.Iterations = res.IterationsRun
}

// fillDet copies a deterministic-detector result into a response.
func fillDet(resp *Response, k int, res *deterministic.Result) {
	resp.Found = res.Found
	resp.Witness = res.Witness
	if res.Found {
		resp.FoundLen = 2 * k
	}
	resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
	resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
}

// accumulatePrior folds a prior entry's history into an amplified
// response so it reports the full budget the verdict rests on.
func accumulatePrior(resp, p *Response) {
	resp.Rounds += p.Rounds
	resp.Messages += p.Messages
	resp.Bits += p.Bits
	resp.MaxCongestion = max(resp.MaxCongestion, p.MaxCongestion)
	resp.Overflowed = resp.Overflowed || p.Overflowed
	resp.Iterations += p.Iterations
}

// Config returns the service configuration with defaults resolved.
func (s *Service) Config() Config {
	return s.cfg
}

// Stats snapshots the service counters.
//
// The snapshot is coherent by read order, not by a global lock: every
// request increments Requests at entry and exactly one partition
// counter (a serve path, or Errors) at exit. Reading the exit counters
// BEFORE the entry counter therefore guarantees
//
//	Requests ≥ Hits + Coalesced + Amplified + Computed + Errors
//
// in every snapshot, however many requests are mid-flight — a reader
// can never observe an exit that lacks its entry. The same ordering
// nests the error taxonomy (reason counters before Errors, which each
// failed request increments first). Reorder these reads and the
// invariant — which hammer tests and operators' dashboards rely on —
// silently breaks under load.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	rejected, shed := s.rejected.Value(), s.shed.Value()
	deadline, cancelled := s.deadlineExceeded.Value(), s.cancelled.Value()
	hits, coalesced := s.hits.Value(), s.coalesced.Value()
	amplified, computed := s.amplified.Value(), s.computed.Value()
	errs := s.errors.Value()
	requests := s.requests.Value()
	solo, fused := s.soloSessions.Value(), s.fusedSessions.Value()
	batches := s.batchesFormed.Value()
	st := Stats{
		Requests:         requests,
		Hits:             hits,
		Coalesced:        coalesced,
		Amplified:        amplified,
		Computed:         computed,
		Errors:           errs,
		Rejected:         rejected,
		Shed:             shed,
		DeadlineExceeded: deadline,
		Cancelled:        cancelled,
		Panics:           s.panics.Value(),
		MeanSessionMS:    float64(s.meanSessionNs.Load()) / 1e6,
		EngineSessions:   solo + fused,
		FusedSessions:    fused,
		SoloSessions:     solo,
		FusedRequests:    s.fusedRequests.Value(),
		BatchesFormed:    batches,
		MaxBatchSize:     s.maxBatchSize.Value(),
		CacheEntries:     entries,
		InFlight:         s.gate.InUse(),
		Queued:           s.gate.Waiting(),
	}
	if batches > 0 {
		st.MeanBatchSize = float64(s.batchSizeSum.Value()) / float64(batches)
	}
	if s.batcher != nil {
		st.BatchesSkipped = s.batcher.Skipped()
	}
	st.Mutations = s.mutations.Value()
	st.NoopMutations = s.noopMutations.Value()
	st.WarmStarts = s.warmStarts.Value()
	st.WarmHits = s.warmHits.Value()
	st.Fallbacks = s.warmFallbacks.Value()
	s.lineageMu.Lock()
	if !s.lastChild.IsZero() {
		st.LastMutationParent = s.lastParent.String()
		st.LastMutationChild = s.lastChild.String()
	}
	s.lineageMu.Unlock()
	return st
}
