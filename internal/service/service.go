package service

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/sched"
)

// Algo names a detector family servable by the Service.
type Algo string

// The servable detector families. They are exactly the classical
// detectors whose results share the Response shape; the quantum detectors
// report a different cost model (charged rounds) and stay on the direct
// facade path.
const (
	// AlgoEven is Algorithm 1: C_{2k}-freeness, randomized, one-sided.
	AlgoEven Algo = "even"
	// AlgoBounded is the F_{2k} bounded-length family detector.
	AlgoBounded Algo = "bounded"
	// AlgoOdd is the Section 3.4 C_{2k+1} detector (classical repetition).
	AlgoOdd Algo = "odd"
	// AlgoDet is the deterministic broadcast-CONGEST detector
	// (arXiv:2412.11195): seedless, verdict a pure function of the graph.
	AlgoDet Algo = "det"
)

// randomized reports whether the algo draws randomness (and therefore
// carries a trial budget and a seed in its cache key).
func (a Algo) randomized() bool { return a != AlgoDet }

// ParseAlgo resolves the wire names (including aliases) to an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "even", "classical", "":
		return AlgoEven, nil
	case "bounded":
		return AlgoBounded, nil
	case "odd":
		return AlgoOdd, nil
	case "det", "deterministic":
		return AlgoDet, nil
	}
	return "", fmt.Errorf("service: unknown algo %q (want even|bounded|odd|det)", s)
}

// Request is one detection request. Graph is required; the remaining
// fields mirror the facade's Detect* options.
type Request struct {
	Graph *graph.Graph
	Algo  Algo
	// K is the half cycle length: detect C_2k (AlgoOdd: C_{2k+1}).
	K int
	// Seed is the master random seed of randomized algos (ignored and
	// normalized to 0 in the cache key for AlgoDet).
	Seed uint64
	// Iterations is the trial budget of randomized algos and must be ≥ 1:
	// a service request states its budget explicitly (the faithful
	// iteration counts are astronomically large for k ≥ 3, so an implicit
	// "faithful" default would be an availability hazard). Ignored for
	// AlgoDet, which runs a single session.
	Iterations int
	// Threshold overrides the congestion threshold τ (0 = faithful).
	Threshold int
	// Eps is the one-sided error probability of AlgoEven/AlgoBounded
	// (0 = the default 1/3); it parameterizes τ and p exactly as the
	// direct Detect path's WithError does, and is part of the cache key.
	// AlgoOdd and AlgoDet take no ε and normalize it away.
	Eps float64
	// Pipelined selects the pipelined color-BFS schedule (AlgoEven and
	// AlgoBounded only).
	Pipelined bool
}

// Response is the cached, deterministic portion of a detection answer: it
// contains the verdict and domain costs but no wall-clock or serve-path
// metadata, so repeated deterministic-mode requests serialize to
// byte-identical responses no matter how they were served.
type Response struct {
	Algo          Algo           `json:"algo"`
	K             int            `json:"k"`
	Fingerprint   string         `json:"fingerprint"`
	Found         bool           `json:"found"`
	Witness       []graph.NodeID `json:"witness,omitempty"`
	FoundLen      int            `json:"found_len,omitempty"`
	Rounds        int            `json:"rounds"`
	Messages      int64          `json:"messages"`
	Bits          int64          `json:"bits"`
	MaxCongestion int            `json:"max_congestion"`
	Overflowed    bool           `json:"overflowed"`
	// Iterations is the cumulative trial budget behind this verdict (0
	// for the deterministic detector's single session).
	Iterations int `json:"iterations"`
}

// Source says how a request was served.
type Source string

// Serve paths, from cheapest to most expensive.
const (
	// SourceCache: pure cache hit — no engine work, no queuing.
	SourceCache Source = "cache"
	// SourceCoalesced: waited on an identical in-flight computation.
	SourceCoalesced Source = "coalesced"
	// SourceAmplified: a cached not-found entry ran only the additional
	// trials the request asked for beyond the recorded budget.
	SourceAmplified Source = "amplified"
	// SourceComputed: full computation.
	SourceComputed Source = "computed"
)

// Config tunes a Service. The zero value gets sensible defaults.
type Config struct {
	// Slots is the number of concurrent computations admitted (the worker
	// pool bound); 0 means GOMAXPROCS.
	Slots int
	// MaxQueue bounds the admission queue: requests that would queue
	// deeper are rejected with ErrOverloaded. 0 means 1024; negative
	// means unbounded.
	MaxQueue int
	// CacheEntries is the LRU verdict-cache capacity; 0 means 1024.
	CacheEntries int
	// Parallel is the per-request trial parallelism handed to the
	// detectors (0/1 sequential, negative GOMAXPROCS). The pool bound
	// applies to requests; Parallel spends each request's slot wider.
	Parallel int
	// Workers and Shards configure each engine session (see
	// congest.Engine); 0 keeps the engine defaults.
	Workers int
	Shards  int
	// BatchSize caps the fused miss-path batch: up to this many
	// compatible cache misses share one engine session on the disjoint
	// union of their graphs. 0 means 8; ≤ 1 disables batching (every miss
	// computes solo, the pre-batching behavior).
	BatchSize int
	// BatchLinger is how long an under-full batch waits for joiners
	// before dispatching — the latency a lone miss pays to offer itself
	// for fusion. 0 means 2ms; negative dispatches immediately.
	BatchLinger time.Duration
}

// ErrOverloaded is returned when the admission queue is full.
var ErrOverloaded = fmt.Errorf("service: admission queue full")

// ErrUnknownCorpus is returned (wrapped) by Resolve when a request names
// a corpus graph that is not registered; the HTTP server maps it to 404.
var ErrUnknownCorpus = fmt.Errorf("service: unknown corpus graph")

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Requests counts every Do call; the four serve-path counters
	// partition the successful ones.
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Amplified int64 `json:"amplified"`
	Computed  int64 `json:"computed"`
	// Errors counts failed requests, Rejected the ErrOverloaded subset.
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	// EngineSessions counts engine sessions actually run — solo
	// computations plus ONE per fused batch: the "work actually done"
	// number that cache hits, coalescing and batching save. (Before the
	// batched miss path this equaled computed + amplified; now it can be
	// smaller, since a fused session serves a whole batch.)
	EngineSessions int64 `json:"engine_sessions"`
	// FusedSessions and SoloSessions split EngineSessions by path;
	// FusedRequests counts the requests those fused sessions served.
	FusedSessions int64 `json:"fused_sessions"`
	SoloSessions  int64 `json:"solo_sessions"`
	FusedRequests int64 `json:"fused_requests"`
	// BatchesFormed counts miss-path batches dispatched (any size);
	// MeanBatchSize and MaxBatchSize describe their size distribution.
	BatchesFormed int64   `json:"batches_formed"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	MaxBatchSize  int64   `json:"max_batch_size"`
	// CacheEntries is the current verdict-cache size, InFlight the
	// computations currently holding pool slots, Queued the admission
	// queue length.
	CacheEntries int `json:"cache_entries"`
	InFlight     int `json:"in_flight"`
	Queued       int `json:"queued"`
}

// Service is a concurrent, caching detection server. Create with New;
// safe for concurrent use.
type Service struct {
	cfg  Config
	gate *sched.Gate

	mu       sync.Mutex
	cache    *lru
	inflight map[cacheKey]*call

	corpusMu sync.RWMutex
	corpus   map[string]*graph.Graph

	jobs jobRegistry

	batcher *sched.Batcher[compatKey, *fuseItem, fuseOut]

	requests, hits, coalesced, amplified, computed atomic.Int64
	errors, rejected                               atomic.Int64
	soloSessions, fusedSessions, fusedRequests     atomic.Int64
	batchesFormed, batchSizeSum, maxBatchSize      atomic.Int64

	// computeHook, when set, replaces the detector dispatch — tests use it
	// to block and count computations deterministically. Never set in
	// production paths.
	computeHook func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error)
}

// call is one in-flight computation; followers wait on done.
type call struct {
	done chan struct{}
	// targetIter is the budget the computation will have accumulated when
	// it finishes (entry budget + delta); followers needing no more than
	// this coalesce onto it.
	targetIter int
	resp       *Response
	err        error
}

// New creates a Service.
func New(cfg Config) *Service {
	if cfg.Slots <= 0 {
		cfg.Slots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchLinger == 0 {
		cfg.BatchLinger = 2 * time.Millisecond
	}
	s := &Service{
		cfg:      cfg,
		gate:     sched.NewGate(cfg.Slots),
		cache:    newLRU(cfg.CacheEntries),
		inflight: make(map[cacheKey]*call),
		corpus:   make(map[string]*graph.Graph),
	}
	if cfg.BatchSize > 1 {
		s.batcher = &sched.Batcher[compatKey, *fuseItem, fuseOut]{
			MaxBatch: cfg.BatchSize,
			Linger:   cfg.BatchLinger,
			// Bound the fused union well below the wire format's node cap
			// (and below sizes where one giant component would serialize the
			// whole batch behind itself).
			Weight:    func(it *fuseItem) int { return it.req.Graph.NumNodes() },
			MaxWeight: congest.MaxNodes / 16,
			Exec:      s.execBatch,
		}
	}
	s.jobs.init()
	return s
}

// validate rejects malformed requests before they consume a pool slot,
// and normalizes req.Algo to its canonical name (aliases like
// "classical" or "deterministic" would otherwise slip past the
// string-keyed cache and dispatch switches).
func validate(req *Request) error {
	if req.Graph == nil {
		return fmt.Errorf("service: request has no graph")
	}
	algo, err := ParseAlgo(string(req.Algo))
	if err != nil {
		return err
	}
	req.Algo = algo
	minK := 2
	if req.Algo == AlgoOdd {
		minK = 1
	}
	if req.K < minK {
		return fmt.Errorf("service: algo %s needs k ≥ %d, got %d", req.Algo, minK, req.K)
	}
	if req.Algo.randomized() && req.Iterations < 1 {
		return fmt.Errorf("service: algo %s requires an explicit trial budget (iterations ≥ 1), got %d",
			req.Algo, req.Iterations)
	}
	if req.Threshold < 0 {
		return fmt.Errorf("service: negative threshold %d", req.Threshold)
	}
	if req.Eps != 0 && (req.Eps <= 0 || req.Eps >= 1) {
		return fmt.Errorf("service: ε = %v outside (0,1)", req.Eps)
	}
	return nil
}

// Info describes how a request was served beyond its Source.
type Info struct {
	Source Source
	// Batch is the size of the engine batch the request was computed in:
	// 1 for a solo session, > 1 when the request was fused with
	// concurrent compatible misses, 0 when no session ran for it (cache
	// hits, coalesced waits, errors).
	Batch int
}

// Do serves one detection request: cache hit, coalesce onto an identical
// in-flight computation, amplify a cached not-found entry, or compute —
// possibly fused with concurrent compatible misses (see Config.BatchSize).
// The returned Source says which path served it. ctx cancellation is
// honored while queued for admission or while waiting on another
// request's computation; a computation that has started always runs to
// completion (its result is cached for everyone).
func (s *Service) Do(ctx context.Context, req *Request) (*Response, Source, error) {
	resp, info, err := s.DoInfo(ctx, req)
	return resp, info.Source, err
}

// DoInfo is Do with serve-path metadata (batch size) for callers that
// surface it, like the HTTP server's X-Evencycle-Batch header.
func (s *Service) DoInfo(ctx context.Context, req *Request) (*Response, Info, error) {
	s.requests.Add(1)
	// Work on a copy: validate normalizes the algo name, and mutating the
	// caller's Request would make sharing one Request across goroutines a
	// data race.
	local := *req
	req = &local
	if err := validate(req); err != nil {
		s.errors.Add(1)
		return nil, Info{}, err
	}
	fp := req.Graph.Fingerprint()
	key := keyFor(req, fp)

	for {
		s.mu.Lock()
		if ent := s.cache.get(key); ent != nil && ent.serves(req.Algo, req.Iterations) {
			resp := ent.resp
			s.mu.Unlock()
			s.hits.Add(1)
			return resp, Info{Source: SourceCache}, nil
		}
		if c, ok := s.inflight[key]; ok {
			// A follower coalesces when the in-flight computation's budget
			// covers its own (a Found result covers any budget; the check
			// below re-verifies after completion).
			covered := req.Algo == AlgoDet || c.targetIter >= req.Iterations
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				s.errors.Add(1)
				return nil, Info{}, ctx.Err()
			}
			if c.err == nil && (covered || c.resp.Found) {
				s.coalesced.Add(1)
				return c.resp, Info{Source: SourceCoalesced}, nil
			}
			// Leader failed, or its budget was short of ours: re-enter.
			continue
		}

		// We are the leader. Snapshot the prior entry (if any) for
		// amplification before releasing the lock; the in-flight map keeps
		// other leaders for this key out until finish().
		prior := s.cache.get(key)
		c := &call{done: make(chan struct{}), targetIter: req.Iterations}
		s.inflight[key] = c
		overloaded := s.cfg.MaxQueue >= 0 && s.gate.Waiting() >= s.cfg.MaxQueue
		if overloaded {
			delete(s.inflight, key)
		}
		s.mu.Unlock()
		if overloaded {
			c.err = ErrOverloaded
			close(c.done)
			s.rejected.Add(1)
			s.errors.Add(1)
			return nil, Info{}, ErrOverloaded
		}

		resp, amplified, batch, err := s.dispatch(ctx, req, fp, key, prior)
		if err != nil {
			s.finish(key, c, nil, err)
			s.errors.Add(1)
			return nil, Info{}, err
		}
		source := SourceComputed
		if amplified {
			source = SourceAmplified
			s.amplified.Add(1)
		} else {
			s.computed.Add(1)
		}
		s.mu.Lock()
		s.cache.put(key, &entry{resp: resp, budget: req.Iterations})
		s.mu.Unlock()
		s.finish(key, c, resp, nil)
		return resp, Info{Source: source, Batch: batch}, nil
	}
}

// dispatch runs the leader's computation: through the batcher when the
// request is fusable and batching is on, otherwise solo under its own
// admission slot. It returns the batch size the work ran in.
func (s *Service) dispatch(ctx context.Context, req *Request, fp graph.Fingerprint, key cacheKey, prior *entry) (*Response, bool, int, error) {
	if s.batcher == nil || !fusable(req.Algo) || s.computeHook != nil {
		if err := s.gate.Acquire(ctx); err != nil {
			return nil, false, 0, err
		}
		resp, amplified, err := s.compute(req, fp, prior)
		s.gate.Release()
		if err == nil {
			s.soloSessions.Add(1)
		}
		return resp, amplified, 1, err
	}
	item := &fuseItem{req: req, fp: fp, key: key, prior: prior}
	out, batch, err := s.batcher.Do(ctx, compatFor(req), item)
	if err != nil {
		// ctx expired while waiting for the batch (the batch itself still
		// computes and caches the item), or the batcher misbehaved.
		return nil, false, 0, err
	}
	return out.resp, out.amplified, batch, out.err
}

// finish publishes the call result and clears the in-flight slot.
func (s *Service) finish(key cacheKey, c *call, resp *Response, err error) {
	c.resp, c.err = resp, err
	s.mu.Lock()
	if s.inflight[key] == c {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
	close(c.done)
}

// amplifySalt separates the derived seeds of amplification runs from
// every other consumer of sched.Tag.
const amplifySalt = 0x5e2f1ce

// compute runs the detector, with the seed derivation shared by the solo
// and fused paths (see runSeed). When prior is a not-found entry with
// budget B < req.Iterations, only the missing req.Iterations-B trials
// run, with a seed derived from (run seed, B) so the accumulated trial
// history never repeats a coloring; costs accumulate into the returned
// response. The reported second value is true on that amplification path.
func (s *Service) compute(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
	if s.computeHook != nil {
		return s.computeHook(req, fp, prior)
	}
	iterations := req.Iterations
	seed := runSeed(req, fp)
	amplify := prior != nil && !prior.resp.Found && req.Algo.randomized()
	if amplify {
		iterations = req.Iterations - prior.budget
		seed = sched.Tag(seed, amplifySalt, uint64(prior.budget))
	}
	resp := &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}
	switch req.Algo {
	case AlgoEven, AlgoBounded:
		opt := core.Options{
			Eps:           req.Eps,
			MaxIterations: iterations,
			Threshold:     req.Threshold,
			Seed:          seed,
			Workers:       s.cfg.Workers,
			Shards:        s.cfg.Shards,
			Parallel:      s.cfg.Parallel,
			Pipelined:     req.Pipelined,
		}
		if req.Algo == AlgoEven {
			res, err := core.DetectEvenCycle(req.Graph, req.K, opt)
			if err != nil {
				return nil, false, err
			}
			fillEven(resp, req.K, res)
		} else {
			res, err := core.DetectBoundedCycle(req.Graph, req.K, opt)
			if err != nil {
				return nil, false, err
			}
			resp.Found = res.Found
			resp.Witness = res.Witness
			resp.FoundLen = res.FoundLen
			resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
			resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
			resp.Iterations = res.IterationsRun
		}
	case AlgoOdd:
		res, err := lowprob.DetectOdd(req.Graph, req.K, lowprob.OddOptions{
			MaxIterations: iterations,
			Threshold:     req.Threshold,
			Seed:          seed,
			Workers:       s.cfg.Workers,
			Shards:        s.cfg.Shards,
			Parallel:      s.cfg.Parallel,
			SeedProb:      1,
		})
		if err != nil {
			return nil, false, err
		}
		resp.Found = res.Found
		resp.Witness = res.Witness
		if res.Found {
			resp.FoundLen = 2*req.K + 1
		}
		resp.Rounds, resp.Messages = res.Rounds, res.Messages
		resp.Iterations = res.IterationsRun
	case AlgoDet:
		res, err := deterministic.Detect(req.Graph, req.K, deterministic.Options{
			Threshold: req.Threshold,
			Workers:   s.cfg.Workers,
			Shards:    s.cfg.Shards,
		})
		if err != nil {
			return nil, false, err
		}
		fillDet(resp, req.K, res)
	default:
		return nil, false, fmt.Errorf("service: unknown algo %q", req.Algo)
	}
	if amplify {
		accumulatePrior(resp, prior.resp)
	}
	return resp, amplify, nil
}

// fillEven copies an Algorithm 1 result into a response (shared by the
// solo and fused serve paths, which must produce identical responses).
func fillEven(resp *Response, k int, res *core.Result) {
	resp.Found = res.Found
	resp.Witness = res.Witness
	if res.Found {
		resp.FoundLen = 2 * k
	}
	resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
	resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
	resp.Iterations = res.IterationsRun
}

// fillDet copies a deterministic-detector result into a response.
func fillDet(resp *Response, k int, res *deterministic.Result) {
	resp.Found = res.Found
	resp.Witness = res.Witness
	if res.Found {
		resp.FoundLen = 2 * k
	}
	resp.Rounds, resp.Messages, resp.Bits = res.Rounds, res.Messages, res.Bits
	resp.MaxCongestion, resp.Overflowed = res.MaxCongestion, res.Overflowed
}

// accumulatePrior folds a prior entry's history into an amplified
// response so it reports the full budget the verdict rests on.
func accumulatePrior(resp, p *Response) {
	resp.Rounds += p.Rounds
	resp.Messages += p.Messages
	resp.Bits += p.Bits
	resp.MaxCongestion = max(resp.MaxCongestion, p.MaxCongestion)
	resp.Overflowed = resp.Overflowed || p.Overflowed
	resp.Iterations += p.Iterations
}

// RegisterGraph adds a named graph to the corpus registry. Registering an
// existing name fails.
func (s *Service) RegisterGraph(name string, g *graph.Graph) error {
	if name == "" || g == nil {
		return fmt.Errorf("service: corpus entries need a name and a graph")
	}
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	if _, dup := s.corpus[name]; dup {
		return fmt.Errorf("service: corpus graph %q already registered", name)
	}
	s.corpus[name] = g
	return nil
}

// NamedGraph resolves a corpus name.
func (s *Service) NamedGraph(name string) (*graph.Graph, bool) {
	s.corpusMu.RLock()
	defer s.corpusMu.RUnlock()
	g, ok := s.corpus[name]
	return g, ok
}

// GraphNames returns the sorted corpus names.
func (s *Service) GraphNames() []string {
	s.corpusMu.RLock()
	defer s.corpusMu.RUnlock()
	names := make([]string, 0, len(s.corpus))
	for name := range s.corpus {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// Config returns the service configuration with defaults resolved.
func (s *Service) Config() Config {
	return s.cfg
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	solo, fused := s.soloSessions.Load(), s.fusedSessions.Load()
	batches := s.batchesFormed.Load()
	st := Stats{
		Requests:       s.requests.Load(),
		Hits:           s.hits.Load(),
		Coalesced:      s.coalesced.Load(),
		Amplified:      s.amplified.Load(),
		Computed:       s.computed.Load(),
		Errors:         s.errors.Load(),
		Rejected:       s.rejected.Load(),
		EngineSessions: solo + fused,
		FusedSessions:  fused,
		SoloSessions:   solo,
		FusedRequests:  s.fusedRequests.Load(),
		BatchesFormed:  batches,
		MaxBatchSize:   s.maxBatchSize.Load(),
		CacheEntries:   entries,
		InFlight:       s.gate.InUse(),
		Queued:         s.gate.Waiting(),
	}
	if batches > 0 {
		st.MeanBatchSize = float64(s.batchSizeSum.Load()) / float64(batches)
	}
	return st
}
