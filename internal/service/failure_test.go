package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// slowGraph is big enough that a detection spends many engine rounds —
// paired with an armed round-stall faultpoint, its runs are guaranteed
// to outlive millisecond-scale deadlines.
func slowGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.Gnm(400, 900, graph.NewRand(7))
}

// TestDeadlineExpiresMidComputation pins the 408 domain: a request whose
// deadline expires while its engine session is running is cancelled
// cooperatively and surfaces ErrDeadline (not a raw context error).
func TestDeadlineExpiresMidComputation(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Set("round-stall:every=1:delay=5ms"); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Slots: 1, BatchSize: 1}) // solo path: ctx reaches the engine
	req := &Request{Graph: slowGraph(t), Algo: AlgoEven, K: 2, Iterations: 5, Deadline: 25 * time.Millisecond}
	_, _, err := svc.Do(context.Background(), req)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if st := svc.Stats(); st.DeadlineExceeded != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want DeadlineExceeded=1 Errors=1", st)
	}
	// The service is intact: the same request without a deadline (and
	// without the stall) completes.
	faultpoint.Reset()
	if _, _, err := svc.Do(context.Background(), &Request{Graph: slowGraph(t), Algo: AlgoEven, K: 2, Iterations: 5}); err != nil {
		t.Fatalf("post-deadline request: %v", err)
	}
}

// TestClientCancellationMidComputation pins the 499 domain: an abandoned
// request stops its engine session at a round boundary and surfaces
// ErrCancelled.
func TestClientCancellationMidComputation(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Set("round-stall:every=1:delay=5ms"); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Slots: 1, BatchSize: 1})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := svc.Do(ctx, &Request{Graph: slowGraph(t), Algo: AlgoEven, K: 2, Iterations: 5})
		errc <- err
	}()
	// Wait until the computation holds the slot (it is inside the
	// engine), then abandon it.
	waitUntil(t, func() bool { return svc.Stats().InFlight == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled request never returned — cooperative cancellation failed")
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats = %+v, want Cancelled=1", st)
	}
}

// TestShedWhenQueueWaitExceedsDeadline pins the 429 domain: with a known
// mean session time and a queue in front of it, a short-deadline request
// is rejected at admission in microseconds instead of queuing to die.
func TestShedWhenQueueWaitExceedsDeadline(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	svc := New(Config{Slots: 1})
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		started <- struct{}{}
		<-release
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	// Teach the admission check that sessions take ~1s each.
	svc.noteSessionDuration(time.Second)

	g1 := graph.Gnm(30, 60, graph.NewRand(1))
	g2 := graph.Gnm(30, 60, graph.NewRand(2))
	g3 := graph.Gnm(30, 60, graph.NewRand(3))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the only slot
		defer wg.Done()
		svc.Do(context.Background(), &Request{Graph: g1, Algo: AlgoDet, K: 2})
	}()
	<-started
	go func() { // queues behind it
		defer wg.Done()
		svc.Do(context.Background(), &Request{Graph: g2, Algo: AlgoDet, K: 2})
	}()
	waitUntil(t, func() bool { return svc.Stats().Queued == 1 })

	// Queue wait estimate: 1 waiter / 1 slot × 1s ≫ 50ms deadline.
	start := time.Now()
	_, _, err := svc.Do(context.Background(), &Request{Graph: g3, Algo: AlgoDet, K: 2, Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatal("deadline shed misclassified as queue overflow")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v — must reject immediately, not queue", d)
	}
	if st := svc.Stats(); st.Shed != 1 || st.Rejected != 0 {
		t.Fatalf("stats = %+v, want Shed=1 Rejected=0", st)
	}
	close(release)
	wg.Wait()
}

// TestOverloadedWrapsShed pins that queue overflow is classified under
// the shed domain (both map to 429).
func TestOverloadedWrapsShed(t *testing.T) {
	if !errors.Is(ErrOverloaded, ErrShed) {
		t.Fatal("ErrOverloaded does not wrap ErrShed")
	}
}

// TestDetectorPanicIsolated pins the 503 domain on the solo path: an
// injected detector crash converts to ErrInternal, wakes coalesced
// followers (they retry and crash too, with every=1), never caches, and
// leaves the service fully usable once the fault is disarmed.
func TestDetectorPanicIsolated(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Set("detector-panic:every=1"); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Slots: 2, BatchSize: 1})
	g := graph.Gnm(60, 120, graph.NewRand(4))
	req := &Request{Graph: g, Algo: AlgoDet, K: 2}
	_, _, err := svc.Do(context.Background(), req)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if st := svc.Stats(); st.Panics != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want Panics=1 InFlight=0", st)
	}
	// Disarm: the same request must now compute (no poisoned cache
	// entry, no stuck in-flight key, no leaked slot).
	faultpoint.Reset()
	if _, src, err := svc.Do(context.Background(), req); err != nil || src != SourceComputed {
		t.Fatalf("post-panic request: source=%q err=%v", src, err)
	}
}

// TestBatchLeaderPanicIsolated pins the 503 domain on the fused path: a
// crash while the batch leader holds the admission slot wakes the waiter
// with ErrInternal, releases the slot, and poisons nothing.
func TestBatchLeaderPanicIsolated(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Set("batch-leader-crash:every=1:limit=1"); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Slots: 2, BatchSize: 4, BatchLinger: time.Millisecond})
	g := graph.Gnm(60, 120, graph.NewRand(5))
	req := &Request{Graph: g, Algo: AlgoDet, K: 2}
	_, _, err := svc.Do(context.Background(), req)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if st := svc.Stats(); st.Panics != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want Panics=1 InFlight=0 Queued=0", st)
	}
	// limit=1: the next batch runs clean on the same service.
	if _, src, err := svc.Do(context.Background(), req); err != nil || src != SourceComputed {
		t.Fatalf("post-crash request: source=%q err=%v", src, err)
	}
}

// TestDrainJobsWaitsForAsyncWork pins graceful drain: DrainJobs blocks
// while a submitted job is still computing, honors its context, and
// returns once the job finishes.
func TestDrainJobsWaitsForAsyncWork(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	svc := New(Config{Slots: 1})
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		started <- struct{}{}
		<-release
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	g := graph.Gnm(30, 60, graph.NewRand(6))
	id := svc.Submit(&Request{Graph: g, Algo: AlgoDet, K: 2})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := svc.DrainJobs(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DrainJobs with running job = %v, want DeadlineExceeded", err)
	}

	close(release)
	if err := svc.DrainJobs(context.Background()); err != nil {
		t.Fatalf("DrainJobs after release: %v", err)
	}
	job, ok := svc.Job(id)
	if !ok || job.State != JobDone {
		t.Fatalf("job after drain: %+v", job)
	}
}

// TestJobGoroutinePanicContained pins that a panic escaping into the job
// goroutine marks the job failed instead of killing the process.
func TestJobGoroutinePanicContained(t *testing.T) {
	svc := New(Config{Slots: 1})
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		panic("async kaboom")
	}
	g := graph.Gnm(30, 60, graph.NewRand(8))
	id := svc.Submit(&Request{Graph: g, Algo: AlgoDet, K: 2})
	if err := svc.DrainJobs(context.Background()); err != nil {
		t.Fatal(err)
	}
	job, ok := svc.Job(id)
	if !ok || job.State != JobFailed {
		t.Fatalf("job = %+v, want failed", job)
	}
}

// TestDefaultAndMaxDeadline pins deadline resolution: a request with no
// deadline adopts the server default, and MaxDeadline caps explicit
// requests.
func TestDefaultAndMaxDeadline(t *testing.T) {
	faultpoint.Reset()
	defer faultpoint.Reset()
	if err := faultpoint.Set("round-stall:every=1:delay=5ms"); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Slots: 1, BatchSize: 1, DefaultDeadline: 25 * time.Millisecond})
	req := &Request{Graph: slowGraph(t), Algo: AlgoEven, K: 2, Iterations: 5}
	if _, _, err := svc.Do(context.Background(), req); !errors.Is(err, ErrDeadline) {
		t.Fatalf("default-deadline err = %v, want ErrDeadline", err)
	}

	svc2 := New(Config{Slots: 1, BatchSize: 1, MaxDeadline: 25 * time.Millisecond})
	req2 := &Request{Graph: slowGraph(t), Algo: AlgoEven, K: 2, Iterations: 5, Deadline: time.Hour}
	if _, _, err := svc2.Do(context.Background(), req2); !errors.Is(err, ErrDeadline) {
		t.Fatalf("capped-deadline err = %v, want ErrDeadline", err)
	}
}
