package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestResolveInlineGraphValidation pins the hardening of the
// network-facing inline-graph path: hostile n/edge values must come back
// as errors, never reach the builder (which would panic or allocate
// unbounded memory).
func TestResolveInlineGraphValidation(t *testing.T) {
	svc := New(Config{})
	cases := []struct {
		name string
		wg   WireGraph
		want string
	}{
		{"negative-n", WireGraph{N: -1}, "declares -1 vertices"},
		{"huge-n", WireGraph{N: 1 << 30}, "vertices for 0 edges"},
		{"n-beyond-edges", WireGraph{N: 1 << 20, Edges: [][2]graph.NodeID{{0, 1}}}, "vertices for 1 edges"},
		{"negative-endpoint", WireGraph{N: 4, Edges: [][2]graph.NodeID{{-1, 0}}}, "out of range"},
		{"huge-endpoint", WireGraph{N: 4, Edges: [][2]graph.NodeID{{0, 1 << 30}}}, "out of range"},
	}
	for _, tc := range cases {
		wg := tc.wg
		_, err := svc.Resolve(&WireRequest{Algo: "det", K: 2, Graph: &wg}, 8)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// A valid inline graph still resolves.
	req, err := svc.Resolve(&WireRequest{Algo: "det", K: 2, Graph: &WireGraph{
		N: 3, Edges: [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}},
	}}, 8)
	if err != nil || req.Graph.NumNodes() != 3 {
		t.Fatalf("valid inline graph: req=%v err=%v", req, err)
	}
}

// TestResolveWireRequestShapes covers the corpus/inline/neither arms and
// the default-budget fill.
func TestResolveWireRequestShapes(t *testing.T) {
	svc := New(Config{})
	g := graph.Gnm(20, 30, graph.NewRand(1))
	if err := svc.RegisterGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Resolve(&WireRequest{Algo: "even", K: 2}, 8); err == nil ||
		!strings.Contains(err.Error(), "neither corpus nor graph") {
		t.Fatalf("graphless request: %v", err)
	}
	if _, err := svc.Resolve(&WireRequest{Algo: "even", K: 2, Corpus: "nope"}, 8); err == nil ||
		!strings.Contains(err.Error(), "unknown corpus") {
		t.Fatalf("unknown corpus: %v", err)
	}
	if _, err := svc.Resolve(&WireRequest{Algo: "even", K: 2, Corpus: "g",
		Graph: &WireGraph{N: 1}}, 8); err == nil || !strings.Contains(err.Error(), "pick one") {
		t.Fatalf("both corpus and graph: %v", err)
	}
	req, err := svc.Resolve(&WireRequest{Algo: "even", K: 2, Corpus: "g"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if req.Iterations != 8 {
		t.Fatalf("default budget not applied: %d", req.Iterations)
	}
	if req.Graph != g {
		t.Fatal("corpus graph not resolved by reference")
	}
}

// TestAlgoAliasNormalization: aliases accepted by ParseAlgo must behave
// exactly like their canonical names all the way through Do — same cache
// key, det semantics (no budget required), canonical name in the
// response.
func TestAlgoAliasNormalization(t *testing.T) {
	svc := New(Config{})
	g := graph.Gnm(40, 80, graph.NewRand(2))
	resp, src, err := svc.Do(context.Background(), &Request{Graph: g, Algo: "deterministic", K: 2})
	if err != nil {
		t.Fatalf("alias request failed: %v", err)
	}
	if src != SourceComputed || resp.Algo != AlgoDet {
		t.Fatalf("alias request: src=%q algo=%q", src, resp.Algo)
	}
	// The canonical name must hit the same entry.
	_, src, err = svc.Do(context.Background(), &Request{Graph: g, Algo: AlgoDet, K: 2})
	if err != nil || src != SourceCache {
		t.Fatalf("canonical follow-up: src=%q err=%v", src, err)
	}
	// "classical" is AlgoEven and therefore needs a budget.
	if _, _, err := svc.Do(context.Background(), &Request{Graph: g, Algo: "classical", K: 2}); err == nil ||
		!strings.Contains(err.Error(), "trial budget") {
		t.Fatalf("classical alias without budget: %v", err)
	}
}
