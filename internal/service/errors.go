package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/congest"
	"repro/internal/sched"
)

// The error taxonomy every failed request resolves to. Each sentinel is
// one failure domain with one HTTP mapping (see cmd/cycleserved):
//
//	ErrDeadline  → 408  the request's deadline expired before completion
//	ErrShed      → 429  rejected at admission: the queue (ErrOverloaded)
//	                    or the estimated queue wait vs. the deadline
//	ErrCancelled → 499  the client abandoned the request
//	ErrInternal  → 503  a detector crashed; the request is safe to retry
//
// Callers test with errors.Is; the concrete error may carry detail
// (estimates, recovered panic values) around the sentinel.
var (
	ErrDeadline  = errors.New("service: deadline exceeded")
	ErrShed      = errors.New("service: load shed")
	ErrCancelled = errors.New("service: request cancelled")
	ErrInternal  = errors.New("service: internal detector failure")
)

// classifyErr folds the raw errors of the compute stack (engine
// cancellation, context errors, contained batch panics) into the
// taxonomy above. Errors already in the taxonomy, and domain errors like
// validation failures or ErrUnknownCorpus, pass through unchanged. ctx
// disambiguates cancellation from deadline expiry: a tripped engine
// CancelFlag looks the same either way, so the request context says
// which one tripped it.
func classifyErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrShed) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrCancelled) || errors.Is(err, ErrInternal) {
		return err
	}
	var pe sched.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("%w: batch execution panicked: %v", ErrInternal, pe.Value)
	}
	if errors.Is(err, congest.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() == context.DeadlineExceeded {
			return fmt.Errorf("%w: %s", ErrDeadline, err)
		}
		return fmt.Errorf("%w: %s", ErrCancelled, err)
	}
	return err
}

// countError attributes one failed request to its taxonomy counter
// (every failure also counts in errors).
func (s *Service) countError(err error) {
	s.errors.Add(1)
	switch {
	case errors.Is(err, ErrOverloaded):
		s.rejected.Add(1)
	case errors.Is(err, ErrShed):
		s.shed.Add(1)
	case errors.Is(err, ErrDeadline):
		s.deadlineExceeded.Add(1)
	case errors.Is(err, ErrCancelled):
		s.cancelled.Add(1)
	}
}
