package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestServiceMutateEquivalence is the service-level twin of the graph
// metamorphic suite: seeded mutation sequences driven through
// AddCorpusEdges must leave the corpus byte-equal (fingerprint and full
// adjacency) to a from-scratch rebuild of the accumulated edge set, and
// detection responses computed by two independent cold services — one
// given the incrementally-built graph, one the scratch-built graph —
// must be byte-identical JSON at every checkpoint.
func TestServiceMutateEquivalence(t *testing.T) {
	const (
		n         = 48
		steps     = 60
		seqs      = 4
		detEveryN = 6
	)
	for seq := 0; seq < seqs; seq++ {
		rng := rand.New(rand.NewSource(int64(900 + seq)))
		s := New(Config{Slots: 1, BatchSize: 1})
		base := [][2]graph.NodeID{{0, 1}, {1, 2}}
		if err := s.CreateCorpus("g", graph.FromEdges(n, base)); err != nil {
			t.Fatal(err)
		}
		acc := append([][2]graph.NodeID(nil), base...)

		for step := 0; step < steps; step++ {
			batch := make([][2]graph.NodeID, 0, 3)
			for i := 0; i < 1+rng.Intn(3); i++ {
				batch = append(batch, [2]graph.NodeID{
					graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)),
				})
			}
			mut, err := s.AddCorpusEdges("g", batch)
			if err != nil {
				t.Fatalf("seq %d step %d: %v", seq, step, err)
			}
			acc = append(acc, batch...)

			scratch := graph.FromEdges(n, acc)
			cur, _ := s.NamedGraph("g")
			if cur != mut.Graph {
				t.Fatalf("seq %d step %d: NamedGraph disagrees with Mutation.Graph", seq, step)
			}
			if cur.Fingerprint() != scratch.Fingerprint() {
				t.Fatalf("seq %d step %d: incremental fingerprint %s != scratch %s",
					seq, step, cur.Fingerprint(), scratch.Fingerprint())
			}
			if cur.NumEdges() != scratch.NumEdges() {
				t.Fatalf("seq %d step %d: edge counts diverge %d vs %d",
					seq, step, cur.NumEdges(), scratch.NumEdges())
			}
			for u := graph.NodeID(0); int(u) < n; u++ {
				inc, ref := cur.Neighbors(u), scratch.Neighbors(u)
				if len(inc) != len(ref) {
					t.Fatalf("seq %d step %d: row %d length diverges", seq, step, u)
				}
				for i := range inc {
					if inc[i] != ref[i] {
						t.Fatalf("seq %d step %d: row %d diverges at %d: %d vs %d",
							seq, step, u, i, inc[i], ref[i])
					}
				}
			}

			if step%detEveryN != 0 {
				continue
			}
			// Cold-vs-cold transcript equality: fresh services so neither
			// the warm path nor cache state can mask a divergence.
			a := New(Config{Slots: 1, BatchSize: 1})
			b := New(Config{Slots: 1, BatchSize: 1})
			ra, _, err := a.Do(context.Background(), &Request{Graph: cur, Algo: AlgoDet, K: 2})
			if err != nil {
				t.Fatalf("seq %d step %d: det incremental: %v", seq, step, err)
			}
			rb, _, err := b.Do(context.Background(), &Request{Graph: scratch, Algo: AlgoDet, K: 2})
			if err != nil {
				t.Fatalf("seq %d step %d: det scratch: %v", seq, step, err)
			}
			ja, _ := json.Marshal(ra)
			jb, _ := json.Marshal(rb)
			if string(ja) != string(jb) {
				t.Fatalf("seq %d step %d: det transcripts diverge:\n inc %s\n ref %s",
					seq, step, ja, jb)
			}
			// And on the mutating service itself, any warmed verdict must
			// stay sound: Found implies a witness that verifies against
			// the current corpus graph.
			warm, _, err := s.Do(context.Background(), &Request{Graph: cur, Algo: AlgoDet, K: 2})
			if err != nil {
				t.Fatalf("seq %d step %d: det warm: %v", seq, step, err)
			}
			if warm.Found {
				if err := graph.IsSimpleCycle(cur, warm.Witness, len(warm.Witness)); err != nil {
					t.Fatalf("seq %d step %d: warm witness invalid: %v", seq, step, err)
				}
			} else if ra.Found && !ra.Overflowed && !warm.Overflowed {
				// The detector is one-sided, so NotFound may disagree with
				// Found only via threshold overflow; with neither side
				// overflowed the verdicts must match.
				t.Fatalf("seq %d step %d: warm NotFound but cold Found without overflow", seq, step)
			}
		}
	}
}
