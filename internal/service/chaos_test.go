package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/graph"
)

// chaosRequests is a deterministic mixed workload: several graphs across
// both fusable algos, with repeats so cache hits and coalescing occur.
func chaosRequests() []*Request {
	var reqs []*Request
	for i := 0; i < 6; i++ {
		g := graph.Gnm(120, 260, graph.NewRand(uint64(100+i)))
		reqs = append(reqs,
			&Request{Graph: g, Algo: AlgoDet, K: 2},
			&Request{Graph: g, Algo: AlgoEven, K: 2, Iterations: 3, Seed: uint64(i)},
		)
	}
	// Repeat the first few: hits/coalesces under chaos must match too.
	reqs = append(reqs, reqs[0], reqs[1], reqs[2])
	return reqs
}

// marshalResp canonicalizes a response for byte-identity comparison.
func marshalResp(t *testing.T, resp *Response) string {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestChaosReplayByteIdentity is the in-process chaos gate: the same
// workload runs once fault-free (reference) and once under injected
// faults (periodic round stalls plus a bounded number of detector and
// batch-leader crashes). Every request that still succeeds under chaos
// must serialize byte-identically to its reference response — faults may
// fail requests, never corrupt them — and afterwards the service must be
// fully drained: no held slots, no queue, no leaked in-flight keys.
func TestChaosReplayByteIdentity(t *testing.T) {
	reqs := chaosRequests()

	reference := make([]string, len(reqs))
	ref := New(Config{Slots: 2, BatchSize: 4, BatchLinger: time.Millisecond})
	for i, r := range reqs {
		resp, _, err := ref.Do(context.Background(), r)
		if err != nil {
			t.Fatalf("reference request %d: %v", i, err)
		}
		reference[i] = marshalResp(t, resp)
	}

	faultpoint.Reset()
	defer faultpoint.Reset()
	for _, spec := range []string{
		"round-stall:every=7:delay=1ms",
		"detector-panic:every=3:limit=2",
		"batch-leader-crash:every=4:limit=2",
	} {
		if err := faultpoint.Set(spec); err != nil {
			t.Fatal(err)
		}
	}

	chaos := New(Config{Slots: 2, BatchSize: 4, BatchLinger: time.Millisecond})
	type outcome struct {
		body string
		err  error
	}
	outcomes := make([]outcome, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, err := chaos.Do(context.Background(), r)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			outcomes[i] = outcome{body: marshalResp(t, resp)}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos replay hung — a fault left a request stuck")
	}

	var failed int
	for i, out := range outcomes {
		if out.err != nil {
			// Every chaos-induced failure must carry the taxonomy, not a
			// raw panic or context error.
			if !errors.Is(out.err, ErrInternal) {
				t.Errorf("request %d failed outside the taxonomy: %v", i, out.err)
			}
			failed++
			continue
		}
		if out.body != reference[i] {
			t.Errorf("request %d diverged under chaos:\nchaos: %s\nref:   %s", i, out.body, reference[i])
		}
	}
	t.Logf("chaos replay: %d/%d failed with contained errors, fired=%v", failed, len(reqs), faultpoint.Fired())

	// The faults must actually have fired — otherwise this gate tests
	// nothing.
	fired := faultpoint.Fired()
	if fired[faultpoint.DetectorPanic] == 0 && fired[faultpoint.BatchLeaderCrash] == 0 {
		t.Fatal("no crash faultpoint fired; chaos run exercised nothing")
	}

	// Drained: no leaked slots, queue empty, panics accounted.
	st := chaos.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("service not drained after chaos: %+v", st)
	}
	if st.Panics == 0 {
		t.Fatalf("stats recorded no panics despite fired=%v", fired)
	}

	// Recovery: with faults disarmed, every request that failed under
	// chaos now succeeds and matches the reference — nothing was
	// poisoned.
	faultpoint.Reset()
	for i, out := range outcomes {
		if out.err == nil {
			continue
		}
		resp, _, err := chaos.Do(context.Background(), reqs[i])
		if err != nil {
			t.Fatalf("post-chaos retry %d: %v", i, err)
		}
		if got := marshalResp(t, resp); got != reference[i] {
			t.Fatalf("post-chaos retry %d diverged:\ngot: %s\nref: %s", i, got, reference[i])
		}
	}
}
