package service

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestCorpusNameValidation holds the name rules at the service layer, so
// a malformed name is the same client error with and without a
// persistent store behind the service — never a store-layer 503.
func TestCorpusNameValidation(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1}) // memory-only: the strictest proof of parity
	g := corpusTestGraph(10, 1)

	long := strings.Repeat("n", store.MaxNameLen+1)
	for _, fn := range []struct {
		label string
		call  func(name string) error
	}{
		{"CreateCorpus", func(name string) error { return s.CreateCorpus(name, g) }},
		{"RegisterGraph", func(name string) error { return s.RegisterGraph(name, g) }},
	} {
		if err := fn.call(""); err == nil {
			t.Fatalf("%s with empty name succeeded", fn.label)
		}
		err := fn.call(long)
		if err == nil {
			t.Fatalf("%s with %d-byte name succeeded", fn.label, len(long))
		}
		// A bad name is the client's to fix: it must NOT read as internal.
		if errors.Is(err, ErrInternal) {
			t.Fatalf("%s long-name error %v wraps ErrInternal (would map to 503, want 400)", fn.label, err)
		}
	}
	// The boundary itself is fine.
	if err := s.CreateCorpus(strings.Repeat("n", store.MaxNameLen), g); err != nil {
		t.Fatalf("CreateCorpus with max-length name: %v", err)
	}
}

// TestStoreErrTaxonomy pins the storeErr mapping: name conflicts to the
// corpus sentinels, size-cap rejections to a plain (400-class) error,
// and everything else to ErrInternal.
func TestStoreErrTaxonomy(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	cases := []struct {
		in       error
		wants    error // sentinel the mapped error must wrap, nil = none of the taxonomy
		internal bool
	}{
		{store.ErrExists, ErrDuplicateCorpus, false},
		{store.ErrNotFound, ErrUnknownCorpus, false},
		{store.ErrTooLarge, nil, false},
		{store.ErrFailed, nil, true},
		{errors.New("disk on fire"), nil, true},
	}
	for _, c := range cases {
		got := s.storeErr("create", "g", c.in)
		if c.wants != nil && !errors.Is(got, c.wants) {
			t.Fatalf("storeErr(%v) = %v, want wrapping %v", c.in, got, c.wants)
		}
		if errors.Is(got, ErrInternal) != c.internal {
			t.Fatalf("storeErr(%v) = %v, internal = %v, want %v", c.in, got, errors.Is(got, ErrInternal), c.internal)
		}
	}
}
