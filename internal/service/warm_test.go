package service

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

// openPathGraph builds the planted-C_2k parent: an open 2k-path (one edge
// short of an even cycle) plus a far path component that keeps the
// localization ball a strict subset of the graph.
func openPathGraph(n int, ids ...graph.NodeID) (*graph.Graph, [2]graph.NodeID) {
	var edges [][2]graph.NodeID
	for i := 1; i < len(ids); i++ {
		edges = append(edges, [2]graph.NodeID{ids[i-1], ids[i]})
	}
	for v := graph.NodeID(20); v < graph.NodeID(n-1); v++ {
		edges = append(edges, [2]graph.NodeID{v, v + 1})
	}
	closing := [2]graph.NodeID{ids[len(ids)-1], ids[0]}
	return graph.FromEdges(n, edges), closing
}

// TestWarmStartVerdictFlip is the service half of the verdict-flip table:
// a cached NotFound on the parent, then the closing edge of a planted C_4
// arrives — the mutation must warm the child fingerprint with a Found
// verdict (localized recheck, no fallback), and the next request must be
// a cache hit carrying a verified witness.
func TestWarmStartVerdictFlip(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	parent, closing := openPathGraph(64, 0, 1, 2, 3)
	if err := s.CreateCorpus("g", parent); err != nil {
		t.Fatal(err)
	}
	resp, src, err := s.Do(context.Background(), &Request{Graph: parent, Algo: AlgoDet, K: 2})
	if err != nil || resp.Found || src != SourceComputed {
		t.Fatalf("parent detection: resp=%+v src=%s err=%v (want computed NotFound)", resp, src, err)
	}

	mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{closing})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Noop || mut.WarmStarts != 1 || mut.Fallbacks != 0 {
		t.Fatalf("mutation = %+v, want 1 warm start and 0 fallbacks", mut)
	}
	if mut.Parent != parent.Fingerprint() || mut.Child != mut.Graph.Fingerprint() {
		t.Fatalf("lineage edge wrong: %+v", mut)
	}

	child, _ := s.NamedGraph("g")
	resp, src, err = s.Do(context.Background(), &Request{Graph: child, Algo: AlgoDet, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceCache {
		t.Fatalf("post-mutation detection source = %s, want cache (warmed)", src)
	}
	if !resp.Found {
		t.Fatal("closing edge must flip the verdict to Found")
	}
	if err := graph.IsSimpleCycle(child, resp.Witness, 4); err != nil {
		t.Fatalf("warm witness invalid: %v", err)
	}
	if resp.Fingerprint != child.Fingerprint().String() {
		t.Fatalf("warm response fingerprint %s, want %s", resp.Fingerprint, child.Fingerprint())
	}

	st := s.Stats()
	if st.Mutations != 1 || st.WarmStarts != 1 || st.WarmHits != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats = mutations:%d warm_starts:%d warm_hits:%d fallbacks:%d, want 1/1/1/0",
			st.Mutations, st.WarmStarts, st.WarmHits, st.Fallbacks)
	}
	if st.LastMutationParent != mut.Parent.String() || st.LastMutationChild != mut.Child.String() {
		t.Fatalf("stats lineage %s→%s, want %s→%s",
			st.LastMutationParent, st.LastMutationChild, mut.Parent, mut.Child)
	}
}

// TestWarmStartFarEdge: the adversarial NotFound-stays-NotFound case. The
// added edge is far from anything that could close a short cycle, so the
// warm path runs only the localized recheck and seeds a NotFound entry —
// warm_starts pinned to 1, fallbacks to 0, and the follow-up request hits.
func TestWarmStartFarEdge(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	parent, _ := openPathGraph(80, 0, 1, 2, 3)
	if err := s.CreateCorpus("g", parent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Do(context.Background(), &Request{Graph: parent, Algo: AlgoDet, K: 2}); err != nil {
		t.Fatal(err)
	}
	mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{{60, 62}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.WarmStarts != 1 || mut.Fallbacks != 0 {
		t.Fatalf("mutation = %+v, want warm_starts 1, fallbacks 0", mut)
	}
	resp, src, err := s.Do(context.Background(), &Request{Graph: mut.Graph, Algo: AlgoDet, K: 2})
	if err != nil || src != SourceCache || resp.Found {
		t.Fatalf("resp=%+v src=%s err=%v, want cached NotFound", resp, src, err)
	}
}

// TestWarmStartFallback pins the forced-fallback case: on a small-diameter
// graph the radius-2k ball covers everything, the localized recheck
// punts, and the warm path runs a full detection instead. The cached
// child entry must then be byte-identical to what a cold service computes
// for the same graph — the fallback is the cold path, just run early.
func TestWarmStartFallback(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	var edges [][2]graph.NodeID
	for v := graph.NodeID(1); v < 6; v++ {
		edges = append(edges, [2]graph.NodeID{0, v})
	}
	parent := graph.FromEdges(6, edges)
	if err := s.CreateCorpus("g", parent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Do(context.Background(), &Request{Graph: parent, Algo: AlgoDet, K: 2}); err != nil {
		t.Fatal(err)
	}
	mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.WarmStarts != 1 || mut.Fallbacks != 1 {
		t.Fatalf("mutation = %+v, want warm_starts 1, fallbacks 1", mut)
	}
	resp, src, err := s.Do(context.Background(), &Request{Graph: mut.Graph, Algo: AlgoDet, K: 2})
	if err != nil || src != SourceCache {
		t.Fatalf("src=%s err=%v, want cached", src, err)
	}
	cold := New(Config{Slots: 1, BatchSize: 1})
	coldResp, _, err := cold.Do(context.Background(), &Request{Graph: mut.Graph, Algo: AlgoDet, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(resp)
	want, _ := json.Marshal(coldResp)
	if string(got) != string(want) {
		t.Fatalf("fallback-warmed response diverges from cold compute:\n got %s\nwant %s", got, want)
	}
	if s.Stats().Fallbacks != 1 {
		t.Fatalf("stats fallbacks = %d, want 1", s.Stats().Fallbacks)
	}
}

// TestWarmStartCarriesFound: a cached Found survives any edge addition
// (edges are only ever added), so the warm path re-keys it without any
// detector work, witness intact and re-verified.
func TestWarmStartCarriesFound(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	parent, closing := openPathGraph(64, 0, 1, 2, 3)
	withCycle, err := parent.WithEdges([][2]graph.NodeID{closing})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateCorpus("g", withCycle); err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Do(context.Background(), &Request{Graph: withCycle, Algo: AlgoDet, K: 2})
	if err != nil || !resp.Found {
		t.Fatalf("parent should be Found: %+v err=%v", resp, err)
	}
	mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{{40, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if mut.WarmStarts != 1 || mut.Fallbacks != 0 {
		t.Fatalf("mutation = %+v, want carried Found, no fallback", mut)
	}
	got, src, err := s.Do(context.Background(), &Request{Graph: mut.Graph, Algo: AlgoDet, K: 2})
	if err != nil || src != SourceCache || !got.Found {
		t.Fatalf("resp=%+v src=%s err=%v, want cached Found", got, src, err)
	}
	if err := graph.IsSimpleCycle(mut.Graph, got.Witness, 4); err != nil {
		t.Fatalf("carried witness invalid in child: %v", err)
	}
}

// TestNoopMutationSkipsEverything pins the no-op contract end to end:
// all-duplicate batches return the IDENTICAL graph pointer, journal
// nothing (the WAL does not grow), warm nothing, and count as
// noop_mutations — repeatedly.
func TestNoopMutationSkipsEverything(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{CompactThreshold: -1, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Slots: 1, BatchSize: 1, Persist: st})
	g := graph.FromEdges(8, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err := s.CreateCorpus("g", g); err != nil {
		t.Fatal(err)
	}
	walBefore := st.Stats().WALBytes
	appendedBefore := st.Stats().Appended
	for i := 0; i < 5; i++ {
		mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{{0, 1}, {2, 1}, {3, 3}})
		if err != nil {
			t.Fatal(err)
		}
		if !mut.Noop {
			t.Fatalf("iteration %d: all-duplicate batch not a no-op: %+v", i, mut)
		}
		if mut.Graph != g {
			t.Fatalf("iteration %d: no-op returned a different graph pointer", i)
		}
		if mut.Parent != mut.Child || mut.Parent != g.Fingerprint() {
			t.Fatalf("iteration %d: no-op lineage should be the identity: %+v", i, mut)
		}
	}
	after := st.Stats()
	if after.WALBytes != walBefore || after.Appended != appendedBefore {
		t.Fatalf("no-op mutations grew the WAL: %d→%d bytes, %d→%d records",
			walBefore, after.WALBytes, appendedBefore, after.Appended)
	}
	stats := s.Stats()
	if stats.NoopMutations != 5 || stats.Mutations != 0 {
		t.Fatalf("stats noop_mutations=%d mutations=%d, want 5/0", stats.NoopMutations, stats.Mutations)
	}
	if cur, _ := s.NamedGraph("g"); cur != g {
		t.Fatal("corpus pointer moved under no-op mutations")
	}
}

// TestWarmStartNoCachedParent: a mutation with nothing cached for the
// parent has nothing to warm — no detector runs, counters stay zero.
func TestWarmStartNoCachedParent(t *testing.T) {
	s := New(Config{Slots: 1, BatchSize: 1})
	parent, closing := openPathGraph(64, 0, 1, 2, 3)
	if err := s.CreateCorpus("g", parent); err != nil {
		t.Fatal(err)
	}
	mut, err := s.AddCorpusEdges("g", [][2]graph.NodeID{closing})
	if err != nil {
		t.Fatal(err)
	}
	if mut.WarmStarts != 0 || mut.Fallbacks != 0 {
		t.Fatalf("mutation = %+v, want nothing warmed", mut)
	}
	if st := s.Stats(); st.EngineSessions != 0 {
		t.Fatalf("engine sessions = %d, want 0 (no cached parent, no warm work)", st.EngineSessions)
	}
}
