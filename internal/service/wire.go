package service

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// WireGraph is the inline edge-list form of a graph on the HTTP API.
type WireGraph struct {
	N     int               `json:"n"`
	Edges [][2]graph.NodeID `json:"edges"`
}

// WireRequest is the JSON body of POST /v1/detect and POST /v1/jobs. The
// graph is given either inline (graph) or as a reference to a corpus
// instance registered at server startup (corpus) — exactly one of the
// two.
type WireRequest struct {
	Algo   string     `json:"algo"`
	K      int        `json:"k"`
	Corpus string     `json:"corpus,omitempty"`
	Graph  *WireGraph `json:"graph,omitempty"`
	// Seed, Iterations, Threshold, Eps, Pipelined mirror Request; a zero
	// Iterations takes the server's default budget.
	Seed       uint64  `json:"seed,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Threshold  int     `json:"threshold,omitempty"`
	Eps        float64 `json:"eps,omitempty"`
	Pipelined  bool    `json:"pipelined,omitempty"`
	// DeadlineMS bounds the request's total service time in
	// milliseconds (queue wait included); 0 adopts the server default,
	// and the server's -max-deadline caps any value. Expiry returns 408;
	// a request shed because its deadline cannot cover the estimated
	// queue wait returns 429.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace opts this request into per-stage timing: the response gains
	// a trace_ns object and X-Evencycle-Stage-* headers (the verdict
	// fields are unchanged). Works on any server, observed or not.
	Trace bool `json:"trace,omitempty"`
}

// wireIsolatedSlack is the flat number of declared-but-untouched vertices
// an inline graph may carry beyond its edge set. The CSR allocates O(n)
// up front, so n must be bounded by what the request body actually ships
// — {"n":134000000,"edges":[]} is ~30 bytes asking for ~1GB of slabs,
// allocated on the handler goroutine before the admission gate is even
// consulted. Isolated vertices are irrelevant to cycle detection, so the
// bound n ≤ 2·|edges| + slack costs legitimate clients nothing.
const wireIsolatedSlack = 4096

// validate rejects inline graphs that would panic or exhaust the
// builder: negative n or endpoints, or a vertex count out of proportion
// to the shipped edge list (see wireIsolatedSlack). Endpoints beyond n
// just grow the vertex set, as in the file format.
func (wg *WireGraph) validate() error {
	maxNodes := 2*len(wg.Edges) + wireIsolatedSlack
	if wg.N < 0 || wg.N > maxNodes {
		return fmt.Errorf("service: inline graph declares %d vertices for %d edges (max %d — ship edges for the vertices you use)",
			wg.N, len(wg.Edges), maxNodes)
	}
	for i, e := range wg.Edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) > maxNodes || int(e[1]) > maxNodes {
			return fmt.Errorf("service: inline graph edge %d has endpoint out of range: [%d,%d]", i, e[0], e[1])
		}
	}
	return nil
}

// Build validates the wire graph and builds the canonical immutable CSR
// from it — the one constructor every inline graph on the API goes
// through, whether for a detection request or a durable corpus create
// (which is what keeps recovered fingerprints byte-equal to the ones
// acknowledged at create time).
func (wg *WireGraph) Build() (*graph.Graph, error) {
	if err := wg.validate(); err != nil {
		return nil, err
	}
	return graph.FromEdges(wg.N, wg.Edges), nil
}

// Resolve converts a wire request into a service Request: the algo name
// is parsed, the graph is resolved against the corpus registry or built
// from the inline edge list, and a zero trial budget takes
// defaultIterations.
func (s *Service) Resolve(wr *WireRequest, defaultIterations int) (*Request, error) {
	algo, err := ParseAlgo(wr.Algo)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	switch {
	case wr.Corpus != "" && wr.Graph != nil:
		return nil, fmt.Errorf("service: request names corpus %q and ships an inline graph — pick one", wr.Corpus)
	case wr.Corpus != "":
		var ok bool
		if g, ok = s.NamedGraph(wr.Corpus); !ok {
			return nil, fmt.Errorf("%w: %q (see /v1/corpus)", ErrUnknownCorpus, wr.Corpus)
		}
	case wr.Graph != nil:
		if g, err = wr.Graph.Build(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("service: request has neither corpus nor graph")
	}
	iters := wr.Iterations
	if iters == 0 && algo.randomized() {
		iters = defaultIterations
	}
	if wr.DeadlineMS < 0 {
		return nil, fmt.Errorf("service: negative deadline_ms %d", wr.DeadlineMS)
	}
	req := &Request{
		Graph:      g,
		Algo:       algo,
		K:          wr.K,
		Seed:       wr.Seed,
		Iterations: iters,
		Threshold:  wr.Threshold,
		Eps:        wr.Eps,
		Pipelined:  wr.Pipelined,
		Deadline:   time.Duration(wr.DeadlineMS) * time.Millisecond,
	}
	if wr.Trace {
		req.Trace = &obs.Trace{}
	}
	return req, nil
}
