package service

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
)

// The batched miss path. Concurrent cache misses whose parameters are
// compatible (same algo / k / threshold / ε / schedule — everything but
// the graph, seed and budget) are collected by a sched.Batcher and run as
// ONE fused engine session on the disjoint union of their graphs
// (core.DetectEvenCycleFused / deterministic.DetectMulti). The fused run
// is transcript-equivalent per component to a solo run, so each
// component's verdict is cached under its own fingerprint exactly as if
// it had been computed alone: a batch of B misses seeds B cache entries
// for the price of one session.

// fusable reports whether the algo has a fused execution path. The
// bounded-length and odd detectors keep the solo path: their internal
// structure (length pairs, repetition schedule) has no fused variant.
func fusable(a Algo) bool { return a == AlgoEven || a == AlgoDet }

// compatKey is the batch compatibility key: requests agreeing on it may
// share one fused session. Graph, seed and trial budget are deliberately
// absent — they are per-component inputs of the fused run.
type compatKey struct {
	algo      Algo
	k         int
	threshold int
	eps       float64
	pipelined bool
}

func compatFor(req *Request) compatKey {
	ck := compatKey{
		algo:      req.Algo,
		k:         req.K,
		threshold: req.Threshold,
		eps:       req.Eps,
		pipelined: req.Pipelined,
	}
	if req.Algo == AlgoDet {
		ck.eps = 0
		ck.pipelined = false
	}
	return ck
}

// fuseItem is one miss-path request travelling through the batcher.
type fuseItem struct {
	req   *Request
	fp    graph.Fingerprint
	key   cacheKey
	prior *entry
	// enqueued is when the item entered the batcher, set only on timed
	// requests (observed service or per-request trace); the batch leader
	// measures the linger stage against it. Zero when untimed.
	enqueued time.Time
}

// fuseOut is one item's outcome. Item-level errors ride here rather than
// on the batch, so one pathological component cannot poison its
// batchmates' verdicts.
type fuseOut struct {
	resp      *Response
	amplified bool
	err       error
}

// fuseSeedSalt derives the seed a randomized detector actually runs with
// from (request seed, graph fingerprint). Mixing the fingerprint in
// decorrelates the per-component randomness of batchmates that share a
// request seed, and applying the same derivation on the solo path keeps
// cached verdicts serve-path-independent: the same request computes the
// same response whether it was fused or ran alone.
const fuseSeedSalt = 0xf5eed

// runSeed is the seed the detector runs with for this request.
func runSeed(req *Request, fp graph.Fingerprint) uint64 {
	if !req.Algo.randomized() {
		return 0
	}
	return sched.Tag(req.Seed, fuseSeedSalt, fp[0], fp[1])
}

// execBatch computes one dispatched batch. It holds ONE admission slot
// for the whole batch (that is the point: B requests, one session's
// worth of pool pressure) and acquires it without a caller context — a
// batch that formed always runs, even if every waiter has gone away,
// because its verdicts are cached.
func (s *Service) execBatch(ck compatKey, items []*fuseItem) ([]fuseOut, error) {
	// The batch is timed when the service observes or any rider opted
	// into a trace; the leader then stamps the shared stage durations
	// (queue wait, engine) into every rider's trace and the linger each
	// rider individually accrued before dispatch.
	timed := s.observe
	for _, it := range items {
		if it.req.Trace != nil {
			timed = true
		}
	}
	var tq time.Time
	if timed {
		tq = time.Now()
	}
	if err := s.gate.Acquire(context.Background()); err != nil {
		return nil, err
	}
	defer s.gate.Release()
	var queueWait time.Duration
	if timed {
		queueWait = time.Since(tq)
	}
	// Count a leader crash exactly once here, then let it unwind into
	// the Batcher's dispatch fence: the deferred Release above runs
	// first (no leaked slot), the fence wakes every waiter with a
	// PanicError (no hang), and since this function never reached its
	// cache-put, no poisoned entry exists.
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			panic(r)
		}
	}()
	if faultpoint.Enabled() {
		faultpoint.Crash(faultpoint.BatchLeaderCrash)
	}
	start := time.Now()

	B := len(items)
	s.batchesFormed.Add(1)
	s.batchSizeSum.Add(int64(B))
	s.maxBatchSize.Max(int64(B))

	var outs []fuseOut
	if B == 1 {
		// Degenerate batch: the existing solo path, one session. The
		// detached context keeps the batch contract — a batch that
		// formed runs to completion and caches, even if its waiter left.
		resp, amplified, err := s.compute(context.Background(), items[0].req, items[0].fp, items[0].prior)
		outs = []fuseOut{{resp: resp, amplified: amplified, err: err}}
		s.soloSessions.Add(1)
	} else {
		switch ck.algo {
		case AlgoEven:
			outs = s.runFusedEven(ck, items)
		case AlgoDet:
			outs = s.runFusedDet(ck, items)
		default:
			outs = s.runSoloFallback(items)
		}
	}

	engineDur := time.Since(start)
	s.noteSessionDuration(engineDur)
	if timed {
		// Each rider spent the shared queue-wait and engine time, plus
		// its own pre-dispatch linger; the cache-install stage is stamped
		// by DoInfo on the rider's own return path. noteStage tolerates a
		// nil trace (histogram-only) and an armed-but-untraced rider.
		for _, it := range items {
			if !s.observe && it.req.Trace == nil {
				continue
			}
			if !it.enqueued.IsZero() {
				s.noteStage(it.req.Trace, obs.StageBatchLinger, tq.Sub(it.enqueued))
			}
			s.noteStage(it.req.Trace, obs.StageQueueWait, queueWait)
			s.noteStage(it.req.Trace, obs.StageEngine, engineDur)
		}
	}

	// Cache every component's verdict under its own fingerprint — here,
	// not in Do, so verdicts of waiters that gave up are kept too.
	s.mu.Lock()
	for i, it := range items {
		if outs[i].err == nil {
			s.cache.put(it.key, &entry{resp: outs[i].resp, budget: it.req.Iterations})
		}
	}
	s.mu.Unlock()
	return outs, nil
}

// runFusedEven maps a batch onto one core.DetectEvenCycleFused call.
// Amplification composes per item: a component with a cached not-found
// budget B runs only its missing trials, on the same continuation seed
// the solo path would use.
func (s *Service) runFusedEven(ck compatKey, items []*fuseItem) []fuseOut {
	B := len(items)
	fitems := make([]core.FusedItem, B)
	for i, it := range items {
		seed := runSeed(it.req, it.fp)
		iterations := it.req.Iterations
		if amplifies(it) {
			iterations = it.req.Iterations - it.prior.budget
			seed = sched.Tag(seed, amplifySalt, uint64(it.prior.budget))
		}
		fitems[i] = core.FusedItem{Graph: it.req.Graph, Seed: seed, Iterations: iterations}
	}
	results, err := core.DetectEvenCycleFused(fitems, ck.k, core.Options{
		Eps:       ck.eps,
		Threshold: ck.threshold,
		Pipelined: ck.pipelined,
		Workers:   s.cfg.Workers,
		Shards:    s.cfg.Shards,
		Observe:   s.engineObs,
	})
	if err != nil {
		// A component the fused path cannot represent (e.g. a graph too
		// small to parameterize) fails the whole call before any engine
		// work; re-running the batch solo localizes the error to its item.
		return s.runSoloFallback(items)
	}
	s.fusedSessions.Add(1)
	s.fusedRequests.Add(int64(B))
	outs := make([]fuseOut, B)
	for i, it := range items {
		resp := &Response{Algo: it.req.Algo, K: it.req.K, Fingerprint: it.fp.String()}
		fillEven(resp, it.req.K, results[i])
		outs[i] = finishAmplify(it, resp)
	}
	return outs
}

// runFusedDet maps a batch onto one deterministic.DetectMulti call. The
// detector is seedless and budget-free, so components carry only graphs.
func (s *Service) runFusedDet(ck compatKey, items []*fuseItem) []fuseOut {
	B := len(items)
	gs := make([]*graph.Graph, B)
	for i, it := range items {
		gs[i] = it.req.Graph
	}
	results, err := deterministic.DetectMulti(gs, ck.k, deterministic.Options{
		Threshold: ck.threshold,
		Workers:   s.cfg.Workers,
		Shards:    s.cfg.Shards,
		Observe:   s.engineObs,
	})
	if err != nil {
		return s.runSoloFallback(items)
	}
	s.fusedSessions.Add(1)
	s.fusedRequests.Add(int64(B))
	outs := make([]fuseOut, B)
	for i, it := range items {
		resp := &Response{Algo: it.req.Algo, K: it.req.K, Fingerprint: it.fp.String()}
		fillDet(resp, it.req.K, results[i])
		outs[i] = fuseOut{resp: resp}
	}
	return outs
}

// runSoloFallback computes each item alone (still under the batch's one
// admission slot), isolating per-item errors.
func (s *Service) runSoloFallback(items []*fuseItem) []fuseOut {
	outs := make([]fuseOut, len(items))
	for i, it := range items {
		resp, amplified, err := s.compute(context.Background(), it.req, it.fp, it.prior)
		outs[i] = fuseOut{resp: resp, amplified: amplified, err: err}
		if err == nil {
			s.soloSessions.Add(1)
		}
	}
	return outs
}

// amplifies reports whether the item extends a cached not-found verdict
// instead of computing from scratch.
func amplifies(it *fuseItem) bool {
	return it.prior != nil && !it.prior.resp.Found && it.req.Algo.randomized()
}

// finishAmplify folds the prior entry's accumulated history into an
// amplifying item's response (mirroring compute's accumulation).
func finishAmplify(it *fuseItem, resp *Response) fuseOut {
	if !amplifies(it) {
		return fuseOut{resp: resp}
	}
	accumulatePrior(resp, it.prior.resp)
	return fuseOut{resp: resp, amplified: true}
}
