package service

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/incr"
)

// Mutation reports one AddCorpusEdges call: the installed graph value and
// the parent→child fingerprint edge the mutation created in the corpus
// lineage, plus what the warm-start machinery did for it.
type Mutation struct {
	// Graph is the corpus value after the mutation (the parent graph
	// itself when Noop).
	Graph *graph.Graph
	// Parent and Child are the fingerprints before and after; equal when
	// Noop. The pair is also surfaced in Stats so operators can follow
	// the lineage without holding mutation responses.
	Parent graph.Fingerprint
	Child  graph.Fingerprint
	// Noop reports that every added edge was already present (or a
	// self-loop): nothing was journaled, cached or re-fingerprinted.
	Noop bool
	// WarmStarts is the number of cached parent verdicts carried to the
	// child fingerprint by this mutation; Fallbacks counts how many of
	// those needed a full re-detection because localization failed.
	WarmStarts int
	Fallbacks  int
}

// warmChild carries the parent graph's cached deterministic verdicts to
// the child fingerprint, so the first detection after a mutation is a
// cache hit instead of a full cold run. Three paths, in order of cost:
//
//   - a cached Found survives edge addition verbatim (adding edges never
//     destroys a cycle); the witness is re-verified against the child and
//     the entry is re-keyed,
//   - a cached NotFound triggers incr.Recheck: the detector runs only on
//     the radius-2k ball around the added endpoints,
//   - when the recheck reports Fallback, a full detection runs under a
//     normal admission slot — still at mutation time, so the verdict
//     cache is warm either way.
//
// Warm entries are marked, and hits on them surface as warm_hits. Costs
// in a warmed response describe the work that actually produced it (the
// parent session for a carried Found, the localized session for a
// recheck), mirroring how amplified entries report serve-history cost.
func (s *Service) warmChild(parent, child *graph.Graph, added [][2]graph.NodeID) (warms, fallbacks int) {
	pfp, cfp := parent.Fingerprint(), child.Fingerprint()
	type cand struct {
		key  cacheKey
		resp *Response
	}
	var cands []cand
	s.mu.Lock()
	for key, el := range s.cache.items {
		if key.algo == AlgoDet && key.fp == pfp {
			cands = append(cands, cand{key, el.Value.(*lruItem).ent.resp})
		}
	}
	s.mu.Unlock()
	for _, c := range cands {
		childKey := c.key
		childKey.fp = cfp
		s.mu.Lock()
		_, busy := s.inflight[childKey]
		exists := s.cache.peek(childKey) != nil
		s.mu.Unlock()
		if busy || exists {
			continue
		}
		var resp *Response
		if c.resp.Found {
			if graph.IsSimpleCycle(child, c.resp.Witness, len(c.resp.Witness)) != nil {
				continue // cannot happen for pure edge addition; never warm unverified
			}
			resp = rekeyResponse(c.resp, cfp)
		} else {
			rc, err := incr.Recheck(child, added, c.key.k, incr.Options{
				Threshold: c.key.threshold,
				Workers:   s.cfg.Workers,
				Shards:    s.cfg.Shards,
			})
			if err != nil {
				continue
			}
			if rc.Fallback {
				fallbacks++
				if resp, err = s.warmFullRun(child, c.key, cfp); err != nil {
					continue
				}
			} else {
				resp = &Response{Algo: AlgoDet, K: c.key.k, Fingerprint: cfp.String()}
				fillDet(resp, c.key.k, rc.Res)
			}
		}
		warms++
		s.mu.Lock()
		if _, busy := s.inflight[childKey]; !busy && s.cache.peek(childKey) == nil {
			s.cache.put(childKey, &entry{resp: resp, warmed: true})
		}
		s.mu.Unlock()
	}
	return warms, fallbacks
}

// warmFullRun is the localization fallback: an ordinary full deterministic
// detection on the child graph, taking a normal admission slot so warm
// work cannot oversubscribe the pool past Config.Slots.
func (s *Service) warmFullRun(child *graph.Graph, key cacheKey, cfp graph.Fingerprint) (*Response, error) {
	req := &Request{Graph: child, Algo: AlgoDet, K: key.k, Threshold: key.threshold}
	ctx := context.Background()
	if err := s.gate.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.gate.Release()
	start := time.Now()
	resp, _, err := s.computeGuarded(ctx, req, cfp, nil)
	if err == nil {
		s.noteSessionDuration(time.Since(start))
		s.soloSessions.Add(1)
	}
	return resp, err
}

// rekeyResponse clones a cached response under a new fingerprint. The
// witness is copied: parent and child entries must not share mutable
// backing storage.
func rekeyResponse(p *Response, fp graph.Fingerprint) *Response {
	resp := *p
	resp.Fingerprint = fp.String()
	if p.Witness != nil {
		resp.Witness = append([]graph.NodeID(nil), p.Witness...)
	}
	return &resp
}

// noteLineage records the most recent parent→child fingerprint edge for
// Stats.
func (s *Service) noteLineage(parent, child graph.Fingerprint) {
	s.lineageMu.Lock()
	s.lastParent, s.lastChild = parent, child
	s.lineageMu.Unlock()
}
