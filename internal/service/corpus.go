package service

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/store"
)

// ErrDuplicateCorpus is returned (wrapped) by RegisterGraph and
// CreateCorpus when the name is already taken; the HTTP server maps it
// to 409 Conflict.
var ErrDuplicateCorpus = errors.New("service: corpus graph already registered")

// checkCorpusName validates a corpus name identically with and without a
// persistent store behind the service: empty and over-long names are a
// client error (→ 400) in both modes, never a store-layer internal
// failure (→ 503). The length cap is the store's on-disk record bound.
func checkCorpusName(name string) error {
	if name == "" {
		return errors.New("service: corpus name must not be empty")
	}
	if len(name) > store.MaxNameLen {
		return fmt.Errorf("service: corpus name is %d bytes (max %d)", len(name), store.MaxNameLen)
	}
	return nil
}

// RegisterGraph adds a named graph to the in-memory corpus registry
// WITHOUT persisting it — the boot-time seeding path for graphs whose
// durable source of truth lives elsewhere (generator specs, files).
// Registering an existing name fails with ErrDuplicateCorpus. Use
// CreateCorpus for mutations that must survive a crash.
func (s *Service) RegisterGraph(name string, g *graph.Graph) error {
	if err := checkCorpusName(name); err != nil {
		return err
	}
	if g == nil {
		return fmt.Errorf("service: corpus entries need a graph")
	}
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	if _, dup := s.corpus[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateCorpus, name)
	}
	s.corpus[name] = g
	return nil
}

// CreateCorpus durably installs a new named graph: journaled in the
// persistent store (when Config.Persist is set) before it becomes
// visible to requests. ErrDuplicateCorpus if the name is taken.
func (s *Service) CreateCorpus(name string, g *graph.Graph) error {
	if err := checkCorpusName(name); err != nil {
		return err
	}
	if g == nil {
		return fmt.Errorf("service: corpus entries need a graph")
	}
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	if _, dup := s.corpus[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateCorpus, name)
	}
	if s.cfg.Persist != nil {
		if err := s.cfg.Persist.Create(name, g); err != nil {
			return s.storeErr("create", name, err)
		}
	}
	s.corpus[name] = g
	return nil
}

// AddCorpusEdges durably appends undirected edges to the named corpus
// graph and returns the resulting Mutation. The mutation is
// copy-on-write: the old graph object is never touched, so in-flight
// detections and cached verdicts keyed on its fingerprint stay valid —
// they describe the graph value they were computed on, which still
// exists. The new value gets a fresh fingerprint, and instead of leaving
// that fingerprint's cache row cold, the warm-start path (see warmChild)
// carries the parent's cached deterministic verdicts over before the
// call returns, recording the parent→child lineage edge in Stats.
//
// A batch whose every edge is already present is a no-op: the identical
// graph pointer is returned, nothing is journaled, and no warm work
// runs. ErrUnknownCorpus for an unknown name.
func (s *Service) AddCorpusEdges(name string, edges [][2]graph.NodeID) (*Mutation, error) {
	s.corpusMu.Lock()
	g, ok := s.corpus[name]
	if !ok {
		s.corpusMu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownCorpus, name)
	}
	var ng *graph.Graph
	var err error
	if s.cfg.Persist != nil {
		if ng, err = s.cfg.Persist.AddEdges(name, edges); err != nil {
			s.corpusMu.Unlock()
			return nil, s.storeErr("add-edges", name, err)
		}
	} else if ng, err = g.WithEdges(edges); err != nil {
		s.corpusMu.Unlock()
		return nil, err
	}
	if ng == g {
		s.corpusMu.Unlock()
		s.noopMutations.Add(1)
		fp := g.Fingerprint()
		return &Mutation{Graph: g, Parent: fp, Child: fp, Noop: true}, nil
	}
	s.corpus[name] = ng
	s.corpusMu.Unlock()
	// Warm outside corpusMu: re-detection can take detector time, and the
	// entries it seeds are keyed by fingerprint, so they stay correct even
	// if another mutation has already moved the name past ng.
	s.mutations.Add(1)
	mut := &Mutation{Graph: ng, Parent: g.Fingerprint(), Child: ng.Fingerprint()}
	mut.WarmStarts, mut.Fallbacks = s.warmChild(g, ng, edges)
	s.warmStarts.Add(int64(mut.WarmStarts))
	s.warmFallbacks.Add(int64(mut.Fallbacks))
	s.noteLineage(mut.Parent, mut.Child)
	return mut, nil
}

// DeleteCorpus durably removes the named corpus graph. In-flight
// detections against it complete normally on the graph value they hold.
// ErrUnknownCorpus for an unknown name.
func (s *Service) DeleteCorpus(name string) error {
	s.corpusMu.Lock()
	defer s.corpusMu.Unlock()
	if _, ok := s.corpus[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCorpus, name)
	}
	if s.cfg.Persist != nil {
		if err := s.cfg.Persist.Delete(name); err != nil {
			return s.storeErr("delete", name, err)
		}
	}
	delete(s.corpus, name)
	return nil
}

// storeErr maps persistent-store errors into the service taxonomy:
// name-level conflicts to their corpus sentinels, size-cap rejections to
// a plain client error, everything else — I/O failures, a poisoned
// store — to ErrInternal (→ 503, retry after the operator intervenes).
func (s *Service) storeErr(op, name string, err error) error {
	switch {
	case errors.Is(err, store.ErrExists):
		return fmt.Errorf("%w: %q", ErrDuplicateCorpus, name)
	case errors.Is(err, store.ErrNotFound):
		return fmt.Errorf("%w: %q", ErrUnknownCorpus, name)
	case errors.Is(err, store.ErrTooLarge):
		// The client asked for a graph the durable format cannot hold:
		// their request to fix (400), not an internal failure (503).
		return fmt.Errorf("service: corpus %s %q: %v", op, name, err)
	default:
		return fmt.Errorf("%w: corpus %s %q: %v", ErrInternal, op, name, err)
	}
}

// NamedGraph resolves a corpus name to its CURRENT graph value. The
// returned *graph.Graph is an immutable snapshot: no mutation ever
// modifies a Graph in place (corpus mutation installs a NEW value under
// the name), so the caller may read it, hash it and run detections on
// it indefinitely without synchronization — it simply may no longer be
// what the name resolves to. corpus_race_test.go holds this contract
// under the race detector.
func (s *Service) NamedGraph(name string) (*graph.Graph, bool) {
	s.corpusMu.RLock()
	defer s.corpusMu.RUnlock()
	g, ok := s.corpus[name]
	return g, ok
}

// GraphNames returns the sorted corpus names.
func (s *Service) GraphNames() []string {
	s.corpusMu.RLock()
	defer s.corpusMu.RUnlock()
	names := make([]string, 0, len(s.corpus))
	for name := range s.corpus {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}
