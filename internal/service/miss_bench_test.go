package service

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// BenchmarkMissSolo measures the full solo miss path — fingerprint,
// scheduling, engine session, response build — on a small graph.
// Varying the seed makes every request a distinct cache key.
func BenchmarkMissSolo(b *testing.B) {
	g, _, err := graph.PlantedLight(16, 4, 1.5, graph.NewRand(7))
	if err != nil {
		b.Fatal(err)
	}
	svc := New(Config{Slots: 1, BatchSize: 1, CacheEntries: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.Do(context.Background(), &Request{
			Graph: g, Algo: AlgoEven, K: 2, Seed: uint64(i + 1), Iterations: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
