// Package service is the detection-as-a-service layer: a long-running,
// concurrent front end over the repository's cycle detectors that turns
// the single-shot engine into a traffic-serving system.
//
// A Service accepts detection requests (graph + algorithm + parameters),
// admits them through a bounded FIFO worker pool (sched.Gate) so bursts
// queue instead of oversubscribing the host, coalesces concurrent
// identical requests into one computation (single-flight), and caches
// verdicts in an LRU keyed by graph.Fingerprint plus the request
// parameters. Two cache policies follow from the detector semantics:
//
//   - Deterministic detector (AlgoDet): the verdict is a pure function of
//     the graph, so entries are cacheable forever and the seed is excluded
//     from the key. Repeated requests are byte-identical cache hits.
//   - Randomized detectors (AlgoEven, AlgoBounded, AlgoOdd): a Found
//     verdict carries a re-verified witness and is therefore permanent
//     (one-sidedness makes positive results deterministic facts). A
//     not-found verdict records the trial budget it exhausted; a repeat
//     query within that budget is a pure hit, while a query asking for
//     more trials runs only the additional trials with derived seeds and
//     merges them into the entry — amplification instead of recomputation.
//
// The cache-hit path performs no engine-session work: it is a map lookup
// plus counter updates. Service.Stats exposes the request/hit/coalesce/
// amplify/engine-session counters the load harness and the S1 experiment
// assert on.
//
// The package also provides an async job registry (Submit/Job) used by
// cmd/cycleserved's /v1/jobs API, and a named-graph corpus registry so
// requests can reference pre-registered instances instead of shipping
// edge lists. See docs/ARCHITECTURE.md ("Service layer") for the request
// lifecycle and cmd/cycleload for the closed-loop load generator.
//
// Failure is typed: every post-validation error wraps one of four
// sentinels — ErrDeadline (the request's deadline expired), ErrShed
// (load shed at admission: queue overflow, or the estimated queue wait
// exceeds the remaining deadline), ErrCancelled (the caller's context
// was cancelled; the engine session stopped cooperatively at a round
// boundary), ErrInternal (a detector panic was contained) — which
// cmd/cycleserved maps onto 408/429/499/503. Deadlines compose
// earliest-wins from Request.Deadline, Config.DefaultDeadline, and
// Config.MaxDeadline; admission sheds against an EWMA of recent session
// durations; panics are fenced at the dispatch, batch, and job-goroutine
// boundaries and surface in Stats.Panics. DrainJobs supports graceful
// shutdown, and internal/faultpoint drives the chaos tests that pin all
// of this (see docs/ARCHITECTURE.md, "Failure domains & request
// lifecycle").
package service
