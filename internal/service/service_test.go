package service

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

func plantedGraph(t *testing.T, n, l int, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := graph.PlantedLight(n, l, 1.5, graph.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEndToEndVerdictsAndCaching runs the real detectors through the
// service on a planted and a C-free instance, checking verdicts, cache
// hits on repeat, and that hits return the identical response object
// (proof the hit path recomputed nothing).
func TestEndToEndVerdictsAndCaching(t *testing.T) {
	svc := New(Config{Slots: 2})
	planted := plantedGraph(t, 300, 4, 3)
	free := graph.HighGirth(300, 450, 6, graph.NewRand(4)) // girth > 6: no C_4

	cases := []struct {
		name      string
		req       *Request
		wantFound bool
	}{
		{"even-planted", &Request{Graph: planted, Algo: AlgoEven, K: 2, Seed: 7, Iterations: 40}, true},
		{"even-free", &Request{Graph: free, Algo: AlgoEven, K: 2, Seed: 7, Iterations: 5}, false},
		{"det-planted", &Request{Graph: planted, Algo: AlgoDet, K: 2}, true},
		{"det-free", &Request{Graph: free, Algo: AlgoDet, K: 2}, false},
		{"bounded-planted", &Request{Graph: planted, Algo: AlgoBounded, K: 2, Seed: 7, Iterations: 40}, true},
	}
	for _, tc := range cases {
		resp, src, err := svc.Do(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if src != SourceComputed {
			t.Fatalf("%s: first request served from %q", tc.name, src)
		}
		if resp.Found != tc.wantFound {
			t.Fatalf("%s: found=%v, want %v", tc.name, resp.Found, tc.wantFound)
		}
		if resp.Found {
			if err := graph.IsSimpleCycle(tc.req.Graph, resp.Witness, len(resp.Witness)); err != nil {
				t.Fatalf("%s: witness invalid: %v", tc.name, err)
			}
		}
		if resp.Fingerprint != tc.req.Graph.Fingerprint().String() {
			t.Fatalf("%s: fingerprint %s does not match graph", tc.name, resp.Fingerprint)
		}
		again, src2, err := svc.Do(context.Background(), tc.req)
		if err != nil {
			t.Fatalf("%s: repeat: %v", tc.name, err)
		}
		if src2 != SourceCache {
			t.Fatalf("%s: repeat served from %q, want cache", tc.name, src2)
		}
		if again != resp {
			t.Fatalf("%s: cache hit returned a different response object", tc.name)
		}
	}
	st := svc.Stats()
	if st.EngineSessions != int64(len(cases)) {
		t.Fatalf("engine sessions %d, want %d (one per distinct request)", st.EngineSessions, len(cases))
	}
	if st.Hits != int64(len(cases)) {
		t.Fatalf("hits %d, want %d", st.Hits, len(cases))
	}
}

// TestSingleFlightAtMostOncePerKey hammers a blocking compute hook with
// concurrent identical requests over a few distinct keys and requires one
// computation per key, with every other request served as a hit or
// coalesced.
func TestSingleFlightAtMostOncePerKey(t *testing.T) {
	const distinct, clients, perClient = 5, 8, 20
	svc := New(Config{Slots: 4})
	var computes atomic.Int64
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		computes.Add(1)
		time.Sleep(2 * time.Millisecond) // widen the coalescing window
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	graphs := make([]*graph.Graph, distinct)
	for i := range graphs {
		graphs[i] = graph.Gnm(40, 80, graph.NewRand(uint64(i)))
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := &Request{Graph: graphs[(c+i)%distinct], Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3}
				if _, _, err := svc.Do(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := computes.Load(); got != distinct {
		t.Fatalf("compute ran %d times, want %d (once per key)", got, distinct)
	}
	st := svc.Stats()
	total := clients * perClient
	if st.Requests != int64(total) {
		t.Fatalf("requests %d, want %d", st.Requests, total)
	}
	if st.Hits+st.Coalesced+st.Computed != int64(total) {
		t.Fatalf("hits %d + coalesced %d + computed %d ≠ %d requests",
			st.Hits, st.Coalesced, st.Computed, total)
	}
	if st.Computed != distinct || st.EngineSessions != distinct {
		t.Fatalf("computed=%d engineSessions=%d, want %d", st.Computed, st.EngineSessions, distinct)
	}
}

// TestAmplification checks the randomized-entry budget policy on a C-free
// graph: a larger budget re-query runs only the delta, accumulates costs,
// and updates the entry so covered re-queries are pure hits.
func TestAmplification(t *testing.T) {
	svc := New(Config{})
	free := graph.HighGirth(200, 300, 6, graph.NewRand(9))
	base := &Request{Graph: free, Algo: AlgoEven, K: 2, Seed: 5, Iterations: 2}

	first, src, err := svc.Do(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed || first.Found {
		t.Fatalf("first: source=%q found=%v", src, first.Found)
	}
	if first.Iterations != 2 {
		t.Fatalf("first budget %d, want 2", first.Iterations)
	}

	bigger := *base
	bigger.Iterations = 5
	amp, src, err := svc.Do(context.Background(), &bigger)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceAmplified {
		t.Fatalf("bigger budget served from %q, want amplified", src)
	}
	if amp.Iterations != 5 {
		t.Fatalf("amplified budget %d, want cumulative 5", amp.Iterations)
	}
	if amp.Rounds <= first.Rounds || amp.Messages <= first.Messages {
		t.Fatalf("amplified costs (%d rounds, %d msgs) do not accumulate over (%d, %d)",
			amp.Rounds, amp.Messages, first.Rounds, first.Messages)
	}

	// Covered budgets — equal or smaller — are now pure hits.
	for _, iter := range []int{5, 3, 1} {
		req := *base
		req.Iterations = iter
		resp, src, err := svc.Do(context.Background(), &req)
		if err != nil {
			t.Fatal(err)
		}
		if src != SourceCache {
			t.Fatalf("iterations=%d served from %q, want cache", iter, src)
		}
		if resp != amp {
			t.Fatal("covered re-query returned a different response object")
		}
	}
	if st := svc.Stats(); st.EngineSessions != 2 || st.Amplified != 1 {
		t.Fatalf("engineSessions=%d amplified=%d, want 2/1", st.EngineSessions, st.Amplified)
	}
}

// TestDeterministicResponsesByteIdentical serializes det-mode responses
// across repeats, service configurations and seeds, requiring identical
// bytes — the acceptance bar for the deterministic cache policy.
func TestDeterministicResponsesByteIdentical(t *testing.T) {
	planted := plantedGraph(t, 250, 4, 12)
	var want []byte
	for _, cfg := range []Config{{Slots: 1}, {Slots: 4, Parallel: 2}, {Slots: 2, Workers: 2, Shards: 3}} {
		svc := New(cfg)
		for rep := 0; rep < 3; rep++ {
			// The seed must not matter for det mode: vary it per repeat.
			req := &Request{Graph: planted, Algo: AlgoDet, K: 2, Seed: uint64(rep)}
			resp, _, err := svc.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if string(got) != string(want) {
				t.Fatalf("det response differs:\n  %s\n  %s", want, got)
			}
		}
		if st := svc.Stats(); st.EngineSessions != 1 {
			t.Fatalf("det repeats ran %d engine sessions, want 1 (seed is not in the det key)", st.EngineSessions)
		}
	}
}

// TestLRUEviction pins the eviction behavior: with capacity 2, a third
// distinct key evicts the least-recently-used entry, whose re-query
// recomputes.
func TestLRUEviction(t *testing.T) {
	svc := New(Config{CacheEntries: 2})
	var computes atomic.Int64
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		computes.Add(1)
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	gs := []*graph.Graph{
		graph.Gnm(30, 60, graph.NewRand(1)),
		graph.Gnm(30, 60, graph.NewRand(2)),
		graph.Gnm(30, 60, graph.NewRand(3)),
	}
	do := func(i int) Source {
		_, src, err := svc.Do(context.Background(), &Request{Graph: gs[i], Algo: AlgoDet, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	do(0)
	do(1)
	if src := do(0); src != SourceCache { // refresh 0's recency
		t.Fatalf("expected hit on 0, got %q", src)
	}
	do(2) // evicts 1 (LRU)
	if src := do(0); src != SourceCache {
		t.Fatalf("0 was evicted (%q), want it retained", src)
	}
	if src := do(1); src != SourceComputed {
		t.Fatalf("evicted 1 served from %q, want recompute", src)
	}
	if got := computes.Load(); got != 4 {
		t.Fatalf("computed %d times, want 4", got)
	}
}

// TestParameterPlumbing pins that every verdict-shaping request field
// reaches its detector: τ=1 must overflow the odd detector (the field
// was once silently dropped while still part of the cache key), and ε
// must change the even detector's faithful parameterization and key.
func TestParameterPlumbing(t *testing.T) {
	svc := New(Config{})
	g, _, err := graph.PlantedLight(200, 3, 2.5, graph.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	// Odd detector: default τ=4 vs τ=1. With τ=1 every forwarder prunes,
	// so the run's congestion watermark must stay at 1.
	loose, _, err := svc.Do(context.Background(), &Request{Graph: g, Algo: AlgoOdd, K: 1, Seed: 2, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	tight, src, err := svc.Do(context.Background(), &Request{Graph: g, Algo: AlgoOdd, K: 1, Seed: 2, Iterations: 30, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Fatalf("threshold-differing request served from %q — threshold not in effectful key", src)
	}
	if loose.Messages == tight.Messages {
		t.Fatalf("τ=1 odd run sent the same %d messages as τ=4 — threshold not reaching the detector", tight.Messages)
	}
	// Even detector: ε shapes the faithful τ; distinct ε must compute
	// separately and yield different parameterizations' costs.
	free := graph.HighGirth(150, 220, 6, graph.NewRand(4))
	a, _, err := svc.Do(context.Background(), &Request{Graph: free, Algo: AlgoEven, K: 2, Seed: 2, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, src, err := svc.Do(context.Background(), &Request{Graph: free, Algo: AlgoEven, K: 2, Seed: 2, Iterations: 2, Eps: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceComputed {
		t.Fatalf("ε-differing request served from %q — ε not in the key", src)
	}
	if a.MaxCongestion == b.MaxCongestion && a.Messages == b.Messages {
		t.Fatal("ε=0.9 run indistinguishable from ε=1/3 — ε not reaching the detector")
	}
	if _, _, err := svc.Do(context.Background(), &Request{Graph: free, Algo: AlgoEven, K: 2, Iterations: 1, Eps: 2}); err == nil ||
		!strings.Contains(err.Error(), "ε") {
		t.Fatalf("invalid ε accepted: %v", err)
	}
}

// TestRequestValidation covers the pre-admission error paths.
func TestRequestValidation(t *testing.T) {
	svc := New(Config{})
	g := graph.Gnm(20, 30, graph.NewRand(1))
	cases := []struct {
		name string
		req  *Request
		want string
	}{
		{"nil-graph", &Request{Algo: AlgoEven, K: 2, Iterations: 1}, "no graph"},
		{"bad-algo", &Request{Graph: g, Algo: "quantum", K: 2, Iterations: 1}, "unknown algo"},
		{"k-too-small", &Request{Graph: g, Algo: AlgoEven, K: 1, Iterations: 1}, "k ≥ 2"},
		{"odd-k-zero", &Request{Graph: g, Algo: AlgoOdd, K: 0, Iterations: 1}, "k ≥ 1"},
		{"no-budget", &Request{Graph: g, Algo: AlgoEven, K: 2}, "trial budget"},
		{"negative-threshold", &Request{Graph: g, Algo: AlgoDet, K: 2, Threshold: -1}, "negative threshold"},
	}
	for _, tc := range cases {
		_, _, err := svc.Do(context.Background(), tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if st := svc.Stats(); st.Errors != int64(len(cases)) || st.EngineSessions != 0 {
		t.Fatalf("errors=%d engineSessions=%d, want %d/0", st.Errors, st.EngineSessions, len(cases))
	}
}

// TestOverload pins the bounded-queue rejection: with one slot held and
// the queue full, a further distinct request fails fast with
// ErrOverloaded.
func TestOverload(t *testing.T) {
	svc := New(Config{Slots: 1, MaxQueue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		started <- struct{}{}
		<-release
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	gs := []*graph.Graph{
		graph.Gnm(30, 60, graph.NewRand(1)),
		graph.Gnm(30, 60, graph.NewRand(2)),
		graph.Gnm(30, 60, graph.NewRand(3)),
	}
	var wg sync.WaitGroup
	do := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := svc.Do(context.Background(), &Request{Graph: gs[i], Algo: AlgoDet, K: 2}); err != nil {
				t.Error(err)
			}
		}()
	}
	do(0)
	<-started // request 0 holds the slot
	do(1)     // request 1 queues
	waitUntil(t, func() bool { return svc.Stats().Queued == 1 })

	_, _, err := svc.Do(context.Background(), &Request{Graph: gs[2], Algo: AlgoDet, K: 2})
	if err != ErrOverloaded {
		t.Fatalf("overflowing request returned %v, want ErrOverloaded", err)
	}
	close(release)
	wg.Wait()
	if st := svc.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", st.Rejected)
	}
}

// TestContextCancelWhileQueued checks a canceled waiter fails with the
// context error and a later identical request still computes cleanly.
func TestContextCancelWhileQueued(t *testing.T) {
	svc := New(Config{Slots: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		started <- struct{}{}
		<-release
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	g1 := graph.Gnm(30, 60, graph.NewRand(1))
	g2 := graph.Gnm(30, 60, graph.NewRand(2))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := svc.Do(context.Background(), &Request{Graph: g1, Algo: AlgoDet, K: 2}); err != nil {
			t.Error(err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := svc.Do(ctx, &Request{Graph: g2, Algo: AlgoDet, K: 2})
		errc <- err
	}()
	waitUntil(t, func() bool { return svc.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, ErrCancelled) {
		t.Fatalf("canceled request returned %v, want ErrCancelled", err)
	}
	close(release)
	wg.Wait()
	// The canceled key is clear: a fresh request computes.
	if _, src, err := svc.Do(context.Background(), &Request{Graph: g2, Algo: AlgoDet, K: 2}); err != nil || src != SourceComputed {
		t.Fatalf("post-cancel request: source=%q err=%v", src, err)
	}
}

// TestJobsLifecycle drives the async path: Submit returns immediately,
// the job reaches done with the same response a sync Do yields, and
// unknown IDs report absence.
func TestJobsLifecycle(t *testing.T) {
	svc := New(Config{})
	planted := plantedGraph(t, 200, 4, 21)
	id := svc.Submit(&Request{Graph: planted, Algo: AlgoDet, K: 2})
	if id == "" {
		t.Fatal("empty job id")
	}
	var job Job
	waitUntil(t, func() bool {
		var ok bool
		job, ok = svc.Job(id)
		if !ok {
			t.Fatal("job vanished")
		}
		return job.State == JobDone || job.State == JobFailed
	})
	if job.State != JobDone || !job.Response.Found {
		t.Fatalf("job state=%s found=%v err=%q", job.State, job.Response != nil && job.Response.Found, job.Error)
	}
	sync, src, err := svc.Do(context.Background(), &Request{Graph: planted, Algo: AlgoDet, K: 2})
	if err != nil || src != SourceCache {
		t.Fatalf("sync follow-up: src=%q err=%v", src, err)
	}
	if sync != job.Response {
		t.Fatal("job and sync responses are different objects")
	}
	if _, ok := svc.Job("job-999999"); ok {
		t.Fatal("unknown job id resolved")
	}

	bad := svc.Submit(&Request{Algo: AlgoEven, K: 2, Iterations: 1}) // nil graph
	waitUntil(t, func() bool {
		j, _ := svc.Job(bad)
		return j.State == JobFailed
	})
	if j, _ := svc.Job(bad); !strings.Contains(j.Error, "no graph") {
		t.Fatalf("failed job error %q", j.Error)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
