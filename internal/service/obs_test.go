package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestStatsCoherenceHammer snapshots Stats continuously while mixed
// traffic (hits, misses, coalesced waits, validation errors) hammers the
// service, and requires the entry/exit invariant in EVERY snapshot:
// Requests ≥ Hits+Coalesced+Amplified+Computed+Errors, and Errors ≥ the
// attributed reasons. The counters are lock-free, so this holds only
// because Stats reads exit counters before the entry counter.
func TestStatsCoherenceHammer(t *testing.T) {
	const clients, perClient, distinct = 8, 300, 4
	svc := New(Config{Slots: 2})
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	graphs := make([]*graph.Graph, distinct)
	for i := range graphs {
		graphs[i] = graph.Gnm(30, 60, graph.NewRand(uint64(i)))
	}

	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	var snapshots int
	var watchers sync.WaitGroup
	for w := 0; w < 2; w++ {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := svc.Stats()
				exits := st.Hits + st.Coalesced + st.Amplified + st.Computed + st.Errors
				reasons := st.Rejected + st.Shed + st.DeadlineExceeded + st.Cancelled
				snapMu.Lock()
				snapshots++
				if st.Requests < exits && snapErr == nil {
					snapErr = fmt.Errorf("requests %d < exits %d (h=%d c=%d a=%d comp=%d e=%d)",
						st.Requests, exits, st.Hits, st.Coalesced, st.Amplified, st.Computed, st.Errors)
				}
				if st.Errors < reasons && snapErr == nil {
					snapErr = fmt.Errorf("errors %d < attributed reasons %d", st.Errors, reasons)
				}
				snapMu.Unlock()
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if i%7 == 3 {
					// A validation error: exits via the Errors counter.
					bad := &Request{Graph: graphs[0], Algo: AlgoEven, K: 2, Iterations: 0}
					if _, _, err := svc.Do(context.Background(), bad); err == nil {
						t.Error("invalid request served")
						return
					}
					continue
				}
				req := &Request{Graph: graphs[(c+i)%distinct], Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3}
				if _, _, err := svc.Do(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	watchers.Wait()
	snapMu.Lock()
	defer snapMu.Unlock()
	if snapErr != nil {
		t.Fatalf("incoherent snapshot (of %d): %v", snapshots, snapErr)
	}
	if snapshots == 0 {
		t.Fatal("watchers took no snapshots")
	}
	// The quiesced totals must balance exactly.
	st := svc.Stats()
	if got := st.Hits + st.Coalesced + st.Amplified + st.Computed + st.Errors; got != st.Requests {
		t.Fatalf("final exits %d ≠ requests %d", got, st.Requests)
	}
}

// TestRequestTraceStages opts one request into a stage trace on a
// DISARMED service (tracing is per-request, not config-gated) and checks
// the stamped stages for a computed miss and a cache hit.
func TestRequestTraceStages(t *testing.T) {
	svc := New(Config{Slots: 1})
	svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
		time.Sleep(2 * time.Millisecond)
		return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
	}
	g := graph.Gnm(30, 60, graph.NewRand(1))

	tr := &obs.Trace{}
	req := &Request{Graph: g, Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3, Trace: tr}
	if _, src, err := svc.Do(context.Background(), req); err != nil || src != SourceComputed {
		t.Fatalf("miss: src=%v err=%v", src, err)
	}
	if eng := tr.Ns(obs.StageEngine); eng < int64(time.Millisecond) {
		t.Fatalf("engine stage %dns, want ≥ the hook's 2ms", eng)
	}
	if tr.Ns(obs.StageBatchLinger) != 0 {
		t.Fatal("solo path stamped a batch-linger stage")
	}
	if tr.Total() < tr.Ns(obs.StageEngine) {
		t.Fatalf("total %d < engine %d", tr.Total(), tr.Ns(obs.StageEngine))
	}

	hitTr := &obs.Trace{}
	hitReq := &Request{Graph: g, Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3, Trace: hitTr}
	if _, src, err := svc.Do(context.Background(), hitReq); err != nil || src != SourceCache {
		t.Fatalf("hit: src=%v err=%v", src, err)
	}
	if hitTr.Ns(obs.StageEngine) != 0 || hitTr.Ns(obs.StageQueueWait) != 0 {
		t.Fatalf("cache hit stamped compute stages: engine=%d queue=%d",
			hitTr.Ns(obs.StageEngine), hitTr.Ns(obs.StageQueueWait))
	}

	// Untraced requests on a disarmed service must keep working (the
	// nil-trace path) — and the registry's stage histograms stay empty.
	if _, _, err := svc.Do(context.Background(), &Request{Graph: g, Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if n := svc.stageDur[st].Count(); n != 0 {
			t.Fatalf("disarmed service fed stage histogram %s (%d observations)", st, n)
		}
	}
}

// TestObservedMetricsEndToEnd drives real detections through an ARMED
// service and checks the scrape: parseable, internally consistent, and
// agreeing with the Stats snapshot and serve-path histogram counts.
func TestObservedMetricsEndToEnd(t *testing.T) {
	svc := New(Config{Slots: 2, Observe: true, BatchSize: 1})
	planted := plantedGraph(t, 200, 4, 3)
	free := graph.HighGirth(200, 300, 6, graph.NewRand(4))

	reqs := []*Request{
		{Graph: planted, Algo: AlgoDet, K: 2},
		{Graph: free, Algo: AlgoDet, K: 2},
		{Graph: planted, Algo: AlgoEven, K: 2, Seed: 7, Iterations: 10},
	}
	for _, r := range reqs {
		if _, _, err := svc.Do(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	// Repeat: cache hits.
	for _, r := range reqs {
		if _, src, err := svc.Do(context.Background(), r); err != nil || src != SourceCache {
			t.Fatalf("repeat: src=%v err=%v", src, err)
		}
	}

	var buf bytes.Buffer
	if err := svc.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatalf("exposition inconsistent: %v", err)
	}

	st := svc.Stats()
	if got, ok := exp.CounterSum(mRequests); !ok || got != float64(st.Requests) {
		t.Fatalf("%s = %v (ok=%v), stats say %d", mRequests, got, ok, st.Requests)
	}
	if got, ok := exp.CounterSum(mServed); !ok || got != float64(st.Hits+st.Coalesced+st.Amplified+st.Computed) {
		t.Fatalf("%s = %v (ok=%v), stats sum %d", mServed, got, ok,
			st.Hits+st.Coalesced+st.Amplified+st.Computed)
	}
	// Every success went through a latency histogram.
	dur, err := exp.MergedHistogram(mRequestDur)
	if err != nil {
		t.Fatal(err)
	}
	if dur == nil || dur.Count != float64(st.Requests-st.Errors) {
		t.Fatalf("%s count = %+v, want %d observations", mRequestDur, dur, st.Requests-st.Errors)
	}
	// Engine sessions fed the round/wall histograms. The engine counts
	// RunSession completions — every trial of a randomized detection is
	// its own session — so the count is at least the service-level
	// session count, usually far more.
	rounds, err := exp.MergedHistogram(mEngineRounds)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == nil || rounds.Count < float64(st.EngineSessions) {
		t.Fatalf("%s count = %+v, want ≥ %d service sessions", mEngineRounds, rounds, st.EngineSessions)
	}
	if rounds.Sum <= 0 {
		t.Fatalf("%s sum = %v, want > 0 rounds", mEngineRounds, rounds.Sum)
	}
	// The gate observed one wait per admitted computation.
	gw, err := exp.MergedHistogram(mGateWait)
	if err != nil {
		t.Fatal(err)
	}
	if gw == nil || gw.Count != float64(st.EngineSessions) {
		t.Fatalf("%s count = %+v, want %d acquisitions", mGateWait, gw, st.EngineSessions)
	}
}

// TestObserveHitPathAllocParity pins that arming observation adds ZERO
// allocations to the cache-hit path: histograms observe with two atomic
// adds into preallocated buckets. A regression here (boxing, map lookup,
// time.Time escape) shows up as armed > disarmed.
func TestObserveHitPathAllocParity(t *testing.T) {
	measure := func(observe bool) float64 {
		svc := New(Config{Slots: 1, Observe: observe})
		svc.computeHook = func(req *Request, fp graph.Fingerprint, prior *entry) (*Response, bool, error) {
			return &Response{Algo: req.Algo, K: req.K, Fingerprint: fp.String()}, false, nil
		}
		g := graph.Gnm(30, 60, graph.NewRand(1))
		req := &Request{Graph: g, Algo: AlgoEven, K: 2, Seed: 1, Iterations: 3}
		if _, src, err := svc.Do(context.Background(), req); err != nil || src != SourceComputed {
			t.Fatalf("prime: src=%v err=%v", src, err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, src, err := svc.Do(context.Background(), req); err != nil || src != SourceCache {
				t.Fatalf("hit: src=%v err=%v", src, err)
			}
		})
	}
	disarmed, armed := measure(false), measure(true)
	if armed > disarmed {
		t.Fatalf("armed hit path allocates %.1f/op vs %.1f/op disarmed", armed, disarmed)
	}
	// The hit path itself is expected alloc-free; a small cushion guards
	// against runtime noise, not against a real regression.
	if disarmed > 1 {
		t.Fatalf("disarmed hit path allocates %.1f/op, want ≤ 1", disarmed)
	}
}
