package service

import (
	"time"

	"repro/internal/obs"
)

// metrics is the service's registry-backed counter and histogram set.
// Every Stats atomic lives here as an obs.Counter/Gauge (same lock-free
// atomic add, now scrapeable), so /v1/stats and /metrics read one
// source of truth. Histogram families are registered unconditionally —
// the exposition's shape does not depend on Config.Observe — but only
// an armed service (Config.Observe) spends timer reads feeding them.
type metrics struct {
	reg *obs.Registry

	// Request accounting. requests counts every Do entry; hits,
	// coalesced, amplified, computed and errors partition the exits.
	// Stats() relies on that entry/exit discipline for its coherence
	// guarantee — see snapshotOrder in Stats.
	requests                         *obs.Counter
	hits, coalesced, amplified       *obs.Counter
	computed, errors                 *obs.Counter
	rejected, shed, deadlineExceeded *obs.Counter
	cancelled, panics                *obs.Counter
	soloSessions, fusedSessions      *obs.Counter
	fusedRequests, batchesFormed     *obs.Counter
	mutations, noopMutations         *obs.Counter
	warmStarts, warmHits             *obs.Counter
	warmFallbacks                    *obs.Counter

	// batchSizeSum backs Stats.MeanBatchSize; the fill-size histogram
	// below is the scrapeable distribution, so the raw sum stays
	// unregistered.
	batchSizeSum obs.Counter
	maxBatchSize *obs.Gauge

	// Latency histograms (armed by Config.Observe).
	durHit, durCoalesced, durAmplified *obs.Histogram
	durComputed, durFused              *obs.Histogram
	stageDur                           [obs.NumStages]*obs.Histogram
	engineRounds, engineWall           *obs.Histogram
	gateWait                           *obs.Histogram
	batchFill                          *obs.Histogram
	storeFsync, storeCompact           *obs.Histogram
	storeAppendBytes                   *obs.Histogram
}

// Metric names, grouped here so the docs' catalog table and the CI
// scrape checks have one place to diff against.
const (
	mRequests       = "evencycle_requests_total"
	mServed         = "evencycle_served_total"
	mErrors         = "evencycle_errors_total"
	mErrorReasons   = "evencycle_request_errors_total"
	mEngineSessions = "evencycle_engine_sessions_total"
	mFusedRequests  = "evencycle_fused_requests_total"
	mBatchesFormed  = "evencycle_batches_formed_total"
	mRequestDur     = "evencycle_request_duration_seconds"
	mStageDur       = "evencycle_stage_duration_seconds"
	mEngineRounds   = "evencycle_engine_session_rounds"
	mEngineWall     = "evencycle_engine_session_seconds"
	mGateWait       = "evencycle_gate_wait_seconds"
	mBatchFill      = "evencycle_batch_fill_size"
	mStoreFsync     = "evencycle_store_fsync_seconds"
	mStoreAppend    = "evencycle_store_append_bytes"
	mStoreCompact   = "evencycle_store_compact_seconds"
)

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.requests = reg.Counter(mRequests, "Detection requests entered (every Do call).")
	servedHelp := "Successful requests partitioned by serve path."
	m.hits = reg.LabeledCounter(mServed, servedHelp, "path", "hit")
	m.coalesced = reg.LabeledCounter(mServed, servedHelp, "path", "coalesced")
	m.amplified = reg.LabeledCounter(mServed, servedHelp, "path", "amplified")
	m.computed = reg.LabeledCounter(mServed, servedHelp, "path", "computed")

	m.errors = reg.Counter(mErrors, "Failed requests (every error exit of Do).")
	reasonHelp := "Failed requests attributed to the failure taxonomy."
	m.rejected = reg.LabeledCounter(mErrorReasons, reasonHelp, "reason", "rejected")
	m.shed = reg.LabeledCounter(mErrorReasons, reasonHelp, "reason", "shed")
	m.deadlineExceeded = reg.LabeledCounter(mErrorReasons, reasonHelp, "reason", "deadline")
	m.cancelled = reg.LabeledCounter(mErrorReasons, reasonHelp, "reason", "cancelled")
	m.panics = reg.LabeledCounter(mErrorReasons, reasonHelp, "reason", "panic")

	sessHelp := "Engine sessions run, split solo vs fused."
	m.soloSessions = reg.LabeledCounter(mEngineSessions, sessHelp, "mode", "solo")
	m.fusedSessions = reg.LabeledCounter(mEngineSessions, sessHelp, "mode", "fused")
	m.fusedRequests = reg.Counter(mFusedRequests, "Requests served by fused sessions.")
	m.batchesFormed = reg.Counter(mBatchesFormed, "Miss-path batches dispatched (any size).")
	m.maxBatchSize = reg.Gauge("evencycle_batch_size_max", "Largest fused batch dispatched so far.")

	mutHelp := "Corpus mutations, split applied vs all-duplicate no-ops."
	m.mutations = reg.LabeledCounter("evencycle_corpus_mutations_total", mutHelp, "kind", "applied")
	m.noopMutations = reg.LabeledCounter("evencycle_corpus_mutations_total", mutHelp, "kind", "noop")
	warmHelp := "Warm-start lifecycle events (starts, later cache hits, full-run fallbacks)."
	m.warmStarts = reg.LabeledCounter("evencycle_warm_total", warmHelp, "event", "start")
	m.warmHits = reg.LabeledCounter("evencycle_warm_total", warmHelp, "event", "hit")
	m.warmFallbacks = reg.LabeledCounter("evencycle_warm_total", warmHelp, "event", "fallback")

	durHelp := "Server-side request latency by serve path (successes only)."
	durBuckets := obs.DurationBuckets()
	m.durHit = reg.LabeledHistogram(mRequestDur, durHelp, "path", "hit", durBuckets, 1e-9)
	m.durCoalesced = reg.LabeledHistogram(mRequestDur, durHelp, "path", "coalesced", durBuckets, 1e-9)
	m.durAmplified = reg.LabeledHistogram(mRequestDur, durHelp, "path", "amplified", durBuckets, 1e-9)
	m.durComputed = reg.LabeledHistogram(mRequestDur, durHelp, "path", "computed", durBuckets, 1e-9)
	m.durFused = reg.LabeledHistogram(mRequestDur, durHelp, "path", "fused", durBuckets, 1e-9)

	stageHelp := "Wall-clock time spent in each request stage."
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		m.stageDur[st] = reg.LabeledHistogram(mStageDur, stageHelp, "stage", st.String(), durBuckets, 1e-9)
	}

	m.engineRounds = reg.Histogram(mEngineRounds, "CONGEST rounds per completed engine session.", obs.RoundBuckets(), 1)
	m.engineWall = reg.Histogram(mEngineWall, "Wall-clock duration per completed engine session.", durBuckets, 1e-9)
	m.gateWait = reg.Histogram(mGateWait, "Admission-gate queue wait per granted slot.", durBuckets, 1e-9)
	m.batchFill = reg.Histogram(mBatchFill, "Fill size of executed miss-path batches.", obs.SizeBuckets(1024), 1)

	m.storeFsync = reg.Histogram(mStoreFsync, "Journal fsync latency on the corpus append path.", durBuckets, 1e-9)
	m.storeAppendBytes = reg.Histogram(mStoreAppend, "Framed size of journaled corpus records.", obs.SizeBuckets(16<<20), 1)
	m.storeCompact = reg.Histogram(mStoreCompact, "Corpus snapshot compaction duration.", durBuckets, 1e-9)

	return m
}

// durFor maps a successful serve outcome to its latency histogram;
// fused when the request was computed in a batch of more than one.
func (m *metrics) durFor(src Source, batch int) *obs.Histogram {
	if batch > 1 {
		return m.durFused
	}
	switch src {
	case SourceCache:
		return m.durHit
	case SourceCoalesced:
		return m.durCoalesced
	case SourceAmplified:
		return m.durAmplified
	default:
		return m.durComputed
	}
}

// noteStage records one stage duration into the request's trace (when
// traced) and, on an armed service, the stage histogram. Called only
// from timed paths — the disarmed untraced hot path never reaches it.
func (s *Service) noteStage(tr *obs.Trace, st obs.Stage, d time.Duration) {
	tr.Add(st, d)
	if s.observe {
		s.stageDur[st].ObserveDuration(d)
	}
}

// Metrics returns the service's metric registry for exposition
// (cycleserved's GET /metrics). Always non-nil; histogram families are
// registered even when observation is disarmed, so the exposition shape
// is stable across configurations.
func (s *Service) Metrics() *obs.Registry {
	return s.reg
}
