// Package proto provides the reusable distributed building blocks that the
// paper's algorithms compose: BFS spanning-tree construction, broadcast,
// convergecast, and leader election, all as CONGEST handlers on the
// simulator in package congest.
//
// These are the O(D)-round primitives that appear inside Theorem 3's Setup
// procedure (elect a leader, run the base algorithm, converge-cast the
// existence of a rejecting node to the leader), in the diameter-reduction
// machinery of Lemma 9, and in the Θ(k)-round witness-notification
// protocol of the local-detection output (Section 1.2).
//
// Determinism contract: the handlers draw no randomness (ties break by
// identifier), so for a fixed topology their transcripts are identical
// across seeds, worker counts and shard settings — the same guarantee the
// detectors built on top of them inherit.
package proto
