package proto

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func TestBFSTreeDepthsMatchBFS(t *testing.T) {
	rng := graph.NewRand(1)
	g := graph.Gnm(300, 900, rng)
	net := congest.NewNetwork(g, 1)
	e := congest.NewEngine(net)
	tree, rep, err := BuildTree(e, 0)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	want := g.BFSDistances(0)
	for v := 0; v < g.NumNodes(); v++ {
		if tree.Depth[v] != want[v] {
			t.Fatalf("node %d depth %d, want %d", v, tree.Depth[v], want[v])
		}
	}
	// Parent pointers must decrease depth by one.
	for v := 0; v < g.NumNodes(); v++ {
		p := tree.Parent[v]
		if p < 0 {
			continue
		}
		if tree.Depth[v] != tree.Depth[p]+1 {
			t.Fatalf("node %d: depth %d but parent depth %d", v, tree.Depth[v], tree.Depth[p])
		}
		if !g.HasEdge(graph.NodeID(v), p) {
			t.Fatalf("parent edge {%d,%d} not in graph", v, p)
		}
	}
	if rep.Rounds < tree.MaxDepth() {
		t.Fatalf("rounds %d < depth %d", rep.Rounds, tree.MaxDepth())
	}
}

func TestBFSTreeChildrenCounts(t *testing.T) {
	g := graph.Star(6)
	net := congest.NewNetwork(g, 1)
	tree, _, err := BuildTree(congest.NewEngine(net), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Children[0] != 6 {
		t.Fatalf("hub children = %d, want 6", tree.Children[0])
	}
	for v := 1; v <= 6; v++ {
		if tree.Children[v] != 0 {
			t.Fatalf("leaf %d children = %d", v, tree.Children[v])
		}
	}
}

func TestConvergecastOr(t *testing.T) {
	rng := graph.NewRand(2)
	g := graph.Gnm(200, 500, rng)
	net := congest.NewNetwork(g, 2)
	e := congest.NewEngine(net)
	tree, _, err := BuildTree(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := g.ConnectedComponents()

	for _, tc := range []struct {
		name string
		set  []int // nodes whose value is true
		want bool
	}{
		{"none", nil, false},
		{"root-only", []int{0}, true},
		{"far-node", []int{findInComponent(comp, comp[0], 0)}, true},
	} {
		c := &ConvergecastOr{Tree: tree, Value: make([]bool, g.NumNodes())}
		for _, v := range tc.set {
			c.Value[v] = true
		}
		if _, err := e.Run(c); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if c.Result != tc.want {
			t.Fatalf("%s: Result = %v, want %v", tc.name, c.Result, tc.want)
		}
	}
}

// findInComponent returns the highest-ID node in the given component (a
// node "far" in ID space from the root).
func findInComponent(comp []int32, target int32, fallback int) int {
	best := fallback
	for v, c := range comp {
		if c == target {
			best = v
		}
	}
	return best
}

func TestConvergecastOrDeep(t *testing.T) {
	g := graph.Path(50)
	net := congest.NewNetwork(g, 3)
	e := congest.NewEngine(net)
	tree, _, err := BuildTree(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := &ConvergecastOr{Tree: tree, Value: make([]bool, 50)}
	c.Value[49] = true
	rep, err := e.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Result {
		t.Fatal("OR lost along a deep path")
	}
	if rep.Rounds < 48 {
		t.Fatalf("convergecast on P_50 took %d rounds, want ≈ depth 49", rep.Rounds)
	}
}

func TestBroadcast(t *testing.T) {
	rng := graph.NewRand(4)
	g := graph.Gnm(150, 400, rng)
	net := congest.NewNetwork(g, 4)
	e := congest.NewEngine(net)
	tree, _, err := BuildTree(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := &Broadcast{Tree: tree, Value: 0xdeadbeef}
	if _, err := e.Run(b); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if tree.Depth[v] < 0 {
			continue // unreachable from root
		}
		if !b.Received[v] || b.Got[v] != 0xdeadbeef {
			t.Fatalf("node %d did not receive the broadcast", v)
		}
	}
}

func TestLeaderElectAgreement(t *testing.T) {
	rng := graph.NewRand(5)
	g := graph.Gnm(200, 600, rng)
	net := congest.NewNetwork(g, 5)
	e := congest.NewEngine(net)
	l := &LeaderElect{}
	rep, err := e.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := g.ConnectedComponents()
	perComp := make(map[int32]congest.NodeID)
	for v := 0; v < g.NumNodes(); v++ {
		c := comp[v]
		if first, ok := perComp[c]; !ok {
			perComp[c] = l.Leader[v]
		} else if first != l.Leader[v] {
			t.Fatalf("component %d disagrees on leader: %d vs %d", c, first, l.Leader[v])
		}
	}
	// Leaders must belong to their own component.
	for v := 0; v < g.NumNodes(); v++ {
		if comp[l.Leader[v]] != comp[v] {
			t.Fatalf("node %d elected leader %d from another component", v, l.Leader[v])
		}
	}
	if rep.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
}

func TestLeaderElectIsRandomized(t *testing.T) {
	g := graph.Cycle(64)
	leaders := make(map[congest.NodeID]bool)
	for seed := uint64(0); seed < 12; seed++ {
		net := congest.NewNetwork(g, seed)
		l := &LeaderElect{}
		if _, err := congest.NewEngine(net).Run(l); err != nil {
			t.Fatal(err)
		}
		leaders[l.Leader[0]] = true
	}
	if len(leaders) < 3 {
		t.Fatalf("12 seeds elected only %d distinct leaders; tags not random?", len(leaders))
	}
}

func TestEstimateDiameter(t *testing.T) {
	g := graph.Path(40)
	net := congest.NewNetwork(g, 6)
	e := congest.NewEngine(net)
	d, rep, err := EstimateDiameter(e, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d != 39 {
		t.Fatalf("diameter estimate = %d, want 39", d)
	}
	if rep.Rounds == 0 {
		t.Fatal("no rounds accounted")
	}
}
