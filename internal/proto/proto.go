package proto

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Message kinds used by this package.
const (
	kindJoin  uint8 = 1 // BFS tree: invitation carrying depth
	kindChild uint8 = 2 // BFS tree: child → parent registration
	kindUp    uint8 = 3 // convergecast: aggregated value toward the root
	kindDown  uint8 = 4 // broadcast: value away from the root
	kindTag   uint8 = 5 // leader election: (tag, id) flooding
)

// BFSTree builds a breadth-first spanning tree rooted at Root and counts
// each node's children. After a run, Parent[u] is u's tree parent (-1 for
// the root and for unreached nodes), Depth[u] its BFS depth (-1 if
// unreached), and Children[u] the number of tree children.
type BFSTree struct {
	Root     congest.NodeID
	Parent   []congest.NodeID
	Depth    []int32
	Children []int32

	joined []bool
}

var _ congest.Handler = (*BFSTree)(nil)

// Init allocates state and wakes the root.
func (b *BFSTree) Init(rt *congest.Runtime) {
	n := rt.N()
	b.Parent = make([]congest.NodeID, n)
	b.Depth = make([]int32, n)
	b.Children = make([]int32, n)
	b.joined = make([]bool, n)
	for i := 0; i < n; i++ {
		b.Parent[i] = -1
		b.Depth[i] = -1
	}
	rt.WakeAt(b.Root, 0)
}

// HandleRound implements congest.Handler.
func (b *BFSTree) HandleRound(rt *congest.Runtime, u congest.NodeID, r int, inbox []congest.Message) {
	if u == b.Root && !b.joined[u] {
		b.joined[u] = true
		b.Depth[u] = 0
		rt.Broadcast(u, kindJoin, 0, 0)
		return
	}
	for _, m := range inbox {
		if m.Kind() == kindChild {
			b.Children[u]++
		}
	}
	if b.joined[u] {
		return
	}
	// Adopt the first (lowest-ID, since inboxes are sender-ordered) join
	// invitation.
	for _, m := range inbox {
		if m.Kind() != kindJoin {
			continue
		}
		b.joined[u] = true
		b.Parent[u] = m.From()
		b.Depth[u] = int32(m.A()) + 1
		rt.Send(u, m.From(), kindChild, 0, 0)
		for _, v := range rt.Neighbors(u) {
			if v != m.From() {
				rt.Send(u, v, kindJoin, uint64(b.Depth[u]), 0)
			}
		}
		return
	}
}

// MaxDepth returns the tree's depth (the eccentricity of the root within
// its component).
func (b *BFSTree) MaxDepth() int {
	best := int32(0)
	for _, d := range b.Depth {
		if d > best {
			best = d
		}
	}
	return int(best)
}

// ConvergecastOr aggregates the OR of per-node bits up a previously built
// BFS tree: after the run, Result holds the OR of Value over all tree
// nodes, available at the root.
type ConvergecastOr struct {
	Tree  *BFSTree
	Value []bool

	Result bool

	pendingChildren []int32
	acc             []bool
	sent            []bool
}

var _ congest.Handler = (*ConvergecastOr)(nil)

// Init wakes every leaf of the tree.
func (c *ConvergecastOr) Init(rt *congest.Runtime) {
	n := rt.N()
	if len(c.Value) != n {
		c.Value = make([]bool, n)
	}
	c.pendingChildren = make([]int32, n)
	c.acc = make([]bool, n)
	c.sent = make([]bool, n)
	copy(c.pendingChildren, c.Tree.Children)
	for u := 0; u < n; u++ {
		c.acc[u] = c.Value[u]
		if c.Tree.Depth[u] >= 0 && c.Tree.Children[u] == 0 {
			rt.WakeAt(congest.NodeID(u), 0)
		}
	}
}

// HandleRound implements congest.Handler.
func (c *ConvergecastOr) HandleRound(rt *congest.Runtime, u congest.NodeID, r int, inbox []congest.Message) {
	for _, m := range inbox {
		if m.Kind() != kindUp {
			continue
		}
		c.pendingChildren[u]--
		if m.A() != 0 {
			c.acc[u] = true
		}
	}
	if c.sent[u] || c.pendingChildren[u] > 0 {
		return
	}
	c.sent[u] = true
	if u == c.Tree.Root {
		c.Result = c.acc[u]
		return
	}
	bit := uint64(0)
	if c.acc[u] {
		bit = 1
	}
	rt.Send(u, c.Tree.Parent[u], kindUp, bit, 0)
}

// Broadcast pushes a value from the root of a previously built BFS tree to
// every node; after the run, Got[u] holds the value for every tree node.
type Broadcast struct {
	Tree  *BFSTree
	Value uint64

	Got      []uint64
	Received []bool
}

var _ congest.Handler = (*Broadcast)(nil)

// Init wakes the root.
func (b *Broadcast) Init(rt *congest.Runtime) {
	n := rt.N()
	b.Got = make([]uint64, n)
	b.Received = make([]bool, n)
	rt.WakeAt(b.Tree.Root, 0)
}

// HandleRound implements congest.Handler.
func (b *Broadcast) HandleRound(rt *congest.Runtime, u congest.NodeID, r int, inbox []congest.Message) {
	if b.Received[u] {
		return
	}
	if u == b.Tree.Root {
		b.Received[u] = true
		b.Got[u] = b.Value
	} else {
		for _, m := range inbox {
			if m.Kind() == kindDown && m.From() == b.Tree.Parent[u] {
				b.Received[u] = true
				b.Got[u] = m.A()
			}
		}
		if !b.Received[u] {
			return
		}
	}
	if b.Tree.Children[u] == 0 {
		return
	}
	rt.Broadcast(u, kindDown, b.Got[u], 0)
}

// LeaderElect elects, within each connected component, the node with the
// lexicographically smallest (tag, ID) pair, where tags are drawn from each
// node's random stream. With random tags the leader is a uniformly random
// node, which is how Algorithm 1-style "pick a node u.a.r." steps are
// realized distributively. After the run, Leader[u] is the elected node as
// known to u.
type LeaderElect struct {
	Leader []congest.NodeID

	bestTag []uint64
	started []bool
}

var _ congest.Handler = (*LeaderElect)(nil)

// Init wakes every node.
func (l *LeaderElect) Init(rt *congest.Runtime) {
	n := rt.N()
	l.Leader = make([]congest.NodeID, n)
	l.bestTag = make([]uint64, n)
	l.started = make([]bool, n)
	for u := 0; u < n; u++ {
		rt.WakeAt(congest.NodeID(u), 0)
	}
}

// HandleRound implements congest.Handler.
func (l *LeaderElect) HandleRound(rt *congest.Runtime, u congest.NodeID, r int, inbox []congest.Message) {
	improved := false
	if !l.started[u] {
		l.started[u] = true
		l.bestTag[u] = rt.Rand(u).Uint64()
		l.Leader[u] = u
		improved = true
	}
	for _, m := range inbox {
		if m.Kind() != kindTag {
			continue
		}
		tag, id := m.A(), congest.NodeID(m.B())
		if tag < l.bestTag[u] || (tag == l.bestTag[u] && id < l.Leader[u]) {
			l.bestTag[u] = tag
			l.Leader[u] = id
			improved = true
		}
	}
	if !improved {
		return
	}
	rt.Broadcast(u, kindTag, l.bestTag[u], uint64(l.Leader[u]))
}

// BuildTree is a convenience wrapper running BFSTree on its own session and
// returning it with the session report.
func BuildTree(e *congest.Engine, root congest.NodeID) (*BFSTree, *congest.Report, error) {
	t := &BFSTree{Root: root}
	rep, err := e.Run(t)
	if err != nil {
		return nil, nil, fmt.Errorf("proto: BFS tree: %w", err)
	}
	return t, rep, nil
}

// EstimateDiameter measures the eccentricity of root and of the farthest
// node from it (a 2-approximation of the diameter) using two BFS-tree
// sessions, and returns it with the total rounds spent.
func EstimateDiameter(e *congest.Engine, root congest.NodeID) (int, *congest.Report, error) {
	total := &congest.Report{}
	t1, rep1, err := BuildTree(e, root)
	if err != nil {
		return 0, nil, err
	}
	total.Accumulate(rep1)
	far := root
	best := int32(-1)
	for u, d := range t1.Depth {
		if d > best {
			best = d
			far = graph.NodeID(u)
		}
	}
	t2, rep2, err := BuildTree(e, far)
	if err != nil {
		return 0, nil, err
	}
	total.Accumulate(rep2)
	return t2.MaxDepth(), total, nil
}
