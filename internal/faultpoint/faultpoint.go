package faultpoint

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into the serving stack. The
// constants below are the complete catalog; Set rejects unknown names.
type Point string

// The compiled-in injection points.
const (
	// DetectorPanic panics inside the service's compute path, immediately
	// before detector dispatch — the solo-path "detector crashed" fault.
	DetectorPanic Point = "detector-panic"
	// BatchLeaderCrash panics inside the fused-batch executor while the
	// batch's admission slot is held — the "batch leader crashed" fault
	// that single-flight followers and batch waiters must survive without
	// hanging, double-releasing, or caching a poisoned entry.
	BatchLeaderCrash Point = "batch-leader-crash"
	// RoundStall sleeps at an engine round boundary, simulating a stalled
	// session (overloaded host, page-fault storm). It spends wall-clock
	// only — transcripts are unchanged — so it exercises deadline
	// admission and cooperative cancellation.
	RoundStall Point = "round-stall"
	// HandlerSlow sleeps in cycleserved's detect handler before the
	// service is invoked, simulating a slow middlebox or handler.
	HandlerSlow Point = "handler-slow"
	// WALAppendTorn is the store-layer torn-write crash: mid-append, only
	// a prefix of the framed WAL record reaches the file before the
	// process dies hard (KillProcess — no deferred functions run).
	// Recovery must truncate the torn tail and keep every earlier record.
	WALAppendTorn Point = "wal-append-torn"
	// SnapshotRenameCrash kills the process during snapshot compaction,
	// after the temporary snapshot file is durable but before the atomic
	// rename installs it. Recovery must ignore the leftover temp file and
	// replay the intact snapshot+journal pair.
	SnapshotRenameCrash Point = "snapshot-rename-crash"
	// FsyncFail makes the store's fsync return an injected error instead
	// of crashing: the mutation must NOT be acknowledged, and the store
	// must refuse further writes until reopened (after a failed fsync the
	// kernel may have dropped the dirty pages, so nothing later can be
	// trusted to be durable).
	FsyncFail Point = "fsync-fail"
)

// Points is the injection-point catalog, in documentation order.
var Points = []Point{
	DetectorPanic, BatchLeaderCrash, RoundStall, HandlerSlow,
	WALAppendTorn, SnapshotRenameCrash, FsyncFail,
}

// arm is the active configuration of one point.
type arm struct {
	every int64
	limit int64
	delay time.Duration
	count atomic.Int64
	fired atomic.Int64
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	arms    atomic.Pointer[map[Point]*arm]
)

// Enabled reports whether any injection point is armed. This single
// atomic load is the entire cost of a disarmed injection site.
func Enabled() bool { return enabled.Load() }

// defaultDelay is the sleep applied by stall points whose spec omits
// delay=.
const defaultDelay = time.Millisecond

// Set arms one injection point from a spec of the form
//
//	point:every=N[:limit=M][:delay=D]
//
// The point fires deterministically on every Nth pass through its site
// (passes N, 2N, 3N, ...), at most M times when limit is given; D is the
// sleep duration of stall points (default 1ms). Calling Set again for
// the same point replaces its configuration and resets its counters.
func Set(spec string) error {
	parts := strings.Split(spec, ":")
	p := Point(parts[0])
	if !known(p) {
		return fmt.Errorf("faultpoint: unknown point %q (catalog: %v)", parts[0], Points)
	}
	a := &arm{every: 1}
	for _, kv := range parts[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("faultpoint: %q: want key=value, got %q", spec, kv)
		}
		switch key {
		case "every":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultpoint: %q: every wants an integer ≥ 1, got %q", spec, val)
			}
			a.every = n
		case "limit":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("faultpoint: %q: limit wants an integer ≥ 1, got %q", spec, val)
			}
			a.limit = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("faultpoint: %q: bad delay %q", spec, val)
			}
			a.delay = d
		default:
			return fmt.Errorf("faultpoint: %q: unknown parameter %q (want every|limit|delay)", spec, key)
		}
	}
	if a.delay == 0 {
		a.delay = defaultDelay
	}
	mu.Lock()
	defer mu.Unlock()
	next := make(map[Point]*arm)
	if cur := arms.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[p] = a
	arms.Store(&next)
	enabled.Store(true)
	return nil
}

// Reset disarms every injection point and clears all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Store(false)
	arms.Store(nil)
}

func known(p Point) bool {
	for _, q := range Points {
		if q == p {
			return true
		}
	}
	return false
}

func lookup(p Point) *arm {
	m := arms.Load()
	if m == nil {
		return nil
	}
	return (*m)[p]
}

// Fire records one pass through point p and reports whether the fault
// fires on this pass (deterministic every-Nth counting, bounded by the
// point's limit). Sites on hot paths guard the call with Enabled().
func Fire(p Point) bool {
	if !enabled.Load() {
		return false
	}
	a := lookup(p)
	if a == nil {
		return false
	}
	if a.count.Add(1)%a.every != 0 {
		return false
	}
	if a.limit > 0 && a.fired.Add(1) > a.limit {
		return false
	}
	if a.limit == 0 {
		a.fired.Add(1)
	}
	return true
}

// Crash panics with a recognizable payload when p fires. The payload
// prefix "faultpoint:" lets recover fences and log triage distinguish
// injected crashes from real ones.
func Crash(p Point) {
	if Fire(p) {
		panic(fmt.Sprintf("faultpoint: injected %s", p))
	}
}

// KillExitCode is the exit status of KillProcess: 137, the status a
// SIGKILLed process reports, so crash harnesses can tell an injected
// hard crash from an ordinary test failure.
const KillExitCode = 137

// KillProcess terminates the process immediately with KillExitCode. No
// deferred functions, no buffered-writer flushes, no connection
// teardown: the in-process equivalent of kill -9, used by store crash
// sites after they have staged their torn on-disk state.
func KillProcess() {
	os.Exit(KillExitCode)
}

// Kill hard-kills the process (KillProcess) when p fires. Sites that
// must stage partial state first (e.g. a torn write) call Fire and
// KillProcess themselves.
func Kill(p Point) {
	if Fire(p) {
		KillProcess()
	}
}

// Sleep pauses for p's configured delay when p fires. A no-op (one
// atomic load) while disarmed.
func Sleep(p Point) {
	if !enabled.Load() {
		return
	}
	if a := lookup(p); a != nil && Fire(p) {
		time.Sleep(a.delay)
	}
}

// Fired snapshots how many times each armed point has fired, for stats
// endpoints and test assertions that a chaos run actually exercised its
// faults.
func Fired() map[Point]int64 {
	m := arms.Load()
	if m == nil {
		return nil
	}
	out := make(map[Point]int64, len(*m))
	for p, a := range *m {
		out[p] = a.fired.Load()
	}
	return out
}

// String renders the armed configuration for logs ("point=every:N" style,
// sorted), or "disarmed".
func String() string {
	m := arms.Load()
	if m == nil || len(*m) == 0 {
		return "disarmed"
	}
	var parts []string
	for p, a := range *m {
		s := fmt.Sprintf("%s:every=%d", p, a.every)
		if a.limit > 0 {
			s += fmt.Sprintf(":limit=%d", a.limit)
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
