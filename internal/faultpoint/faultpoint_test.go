package faultpoint

import (
	"strings"
	"testing"
	"time"
)

// TestDisarmedCostsNothing pins the disarmed contract: no point fires,
// Enabled is false, and Fired reports nothing.
func TestDisarmedCostsNothing(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() true after Reset")
	}
	for i := 0; i < 100; i++ {
		if Fire(DetectorPanic) {
			t.Fatal("disarmed point fired")
		}
	}
	Crash(BatchLeaderCrash) // must not panic
	Sleep(RoundStall)       // must not sleep meaningfully
	if got := Fired(); got != nil {
		t.Fatalf("Fired() = %v while disarmed", got)
	}
}

// TestEveryNthDeterministic pins the deterministic firing schedule:
// passes N, 2N, 3N fire, everything else does not.
func TestEveryNthDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set("detector-panic:every=3"); err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 10; i++ {
		if Fire(DetectorPanic) {
			fires = append(fires, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fires) != len(want) {
		t.Fatalf("fired on passes %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired on passes %v, want %v", fires, want)
		}
	}
	if got := Fired()[DetectorPanic]; got != 3 {
		t.Fatalf("Fired[detector-panic] = %d, want 3", got)
	}
}

// TestLimitBoundsFires pins limit=M: the point stops firing after M
// fires even though the schedule keeps matching.
func TestLimitBoundsFires(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set("batch-leader-crash:every=2:limit=2"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 20; i++ {
		if Fire(BatchLeaderCrash) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", fired)
	}
}

// TestCrashPanicsWithRecognizablePayload pins the panic payload prefix
// the recover fences and log triage rely on.
func TestCrashPanicsWithRecognizablePayload(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set("detector-panic:every=1:limit=1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Crash did not panic")
		}
		if s, ok := r.(string); !ok || !strings.HasPrefix(s, "faultpoint: injected ") {
			t.Fatalf("panic payload %v lacks the faultpoint prefix", r)
		}
	}()
	Crash(DetectorPanic)
}

// TestSleepSpendsConfiguredDelay checks stall points actually pause.
func TestSleepSpendsConfiguredDelay(t *testing.T) {
	Reset()
	defer Reset()
	if err := Set("round-stall:every=1:delay=20ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Sleep(RoundStall)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Sleep paused only %v, want ≥ ~20ms", d)
	}
}

// TestSetValidation rejects unknown points and malformed parameters.
func TestSetValidation(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{
		"no-such-point:every=1",
		"round-stall:every=0",
		"round-stall:every=x",
		"round-stall:limit=0",
		"round-stall:delay=-1s",
		"round-stall:bogus=1",
		"round-stall:every",
	} {
		if err := Set(spec); err == nil {
			t.Errorf("Set(%q) accepted", spec)
		}
	}
	if Enabled() {
		t.Fatal("failed Set calls armed the registry")
	}
}
