// Package faultpoint provides named, runtime-armed fault-injection
// points for the serving stack's chaos suite. Each injection site in
// production code is a Point from the compiled-in catalog (detector
// panic, fused-batch leader crash, engine round stall, slow HTTP
// handler); the sites are permanently compiled in but cost exactly one
// atomic load while disarmed, so they are safe on every hot path. Arming
// happens explicitly — `cycleserved -fault spec`, `cycleload -fault
// spec`, or faultpoint.Set in tests — and is deterministic: a point
// fires on every Nth pass through its site (optionally at most M times),
// so chaos replays are reproducible and CI gates can assert exact
// interleavings survived. Panic points feed the recover fences in
// internal/congest, internal/sched and internal/service; stall points
// exercise deadline admission and client-side cancellation without
// altering any transcript (sleeps spend wall-clock, never randomness).
package faultpoint
