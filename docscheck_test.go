package evencycle

// Documentation gates, run as part of the tier-1 suite (and therefore in
// CI): every exported symbol of the facade carries a doc comment, every
// internal package has a doc.go package document, and the documentation
// surface (docs/ARCHITECTURE.md, EXPERIMENTS.md) exists and is linked
// from the README. EXPERIMENTS.md freshness is checked by a separate CI
// step that regenerates it and diffs.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeSymbolsDocumented parses the facade package source and fails
// on any exported top-level symbol (func, method, type, const, var)
// without a doc comment.
func TestFacadeSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["evencycle"]
	if !ok {
		t.Fatalf("facade package not found; parsed %v", pkgs)
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		missing = append(missing, name+" ("+fset.Position(pos).String()+")")
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					report(d.Pos(), "func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Fatalf("exported facade symbols without doc comments:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// TestInternalPackagesHaveDocFiles requires a doc.go package document in
// every internal package, opening with the conventional "Package <name>"
// sentence.
func TestInternalPackagesHaveDocFiles(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join("internal", name, "doc.go")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("internal package %q has no doc.go: %v", name, err)
			continue
		}
		if !strings.HasPrefix(string(data), "// Package "+name+" ") {
			t.Errorf("%s does not open with %q", path, "// Package "+name)
		}
	}
}

// TestDocumentationSurfaceExists pins the documented artifacts and their
// README links.
func TestDocumentationSurfaceExists(t *testing.T) {
	for _, f := range []string{
		filepath.Join("docs", "ARCHITECTURE.md"),
		"EXPERIMENTS.md",
	} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("missing documentation artifact: %v", err)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, link := range []string{"docs/ARCHITECTURE.md", "EXPERIMENTS.md"} {
		if !strings.Contains(string(readme), link) {
			t.Errorf("README.md does not link %s", link)
		}
	}
	arch, err := os.ReadFile(filepath.Join("docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch), "DetectDeterministic") {
		t.Error("docs/ARCHITECTURE.md detector matrix lacks the deterministic column")
	}
}
