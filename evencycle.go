// Package evencycle is a Go implementation of
//
//	Fraigniaud, Luce, Magniez, Todinca:
//	"Even-Cycle Detection in the Randomized and Quantum CONGEST Model"
//	(PODC 2024, arXiv:2402.12018)
//
// It decides C_{2k}-freeness in the CONGEST model of distributed computing
// in O(n^{1-1/k}) rounds (Theorem 1, via colored BFS explorations with a
// global congestion threshold), and — on a classically-simulated quantum
// round ledger — in Õ(n^{1/2-1/2k}) rounds (Theorem 2, via
// congestion-reduced explorations amplified by distributed quantum
// Monte-Carlo amplification inside diameter-reduced components). Odd
// cycles (Θ̃(√n) quantum) and bounded-length families
// F_{2k} = {C_ℓ | 3 ≤ ℓ ≤ 2k} are covered as well, and
// DetectDeterministic adds the same authors' deterministic broadcast-
// CONGEST detector (arXiv:2412.11195), whose verdict uses no randomness
// at all.
//
// Every detector is one-sided: when it reports a cycle, the cycle is real
// and returned as a witness that has been re-verified against the input
// graph; a C-free input is never rejected.
//
// The package is a facade over the internal engine; see
// docs/ARCHITECTURE.md for the system inventory, EXPERIMENTS.md for the
// reproduced experiment tables, and the examples/ directory for runnable
// programs.
package evencycle

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/deterministic"
	"repro/internal/graph"
	"repro/internal/lowprob"
	"repro/internal/quantum"
)

// Graph is an immutable simple undirected graph (vertices 0..N-1).
type Graph = graph.Graph

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// NewGraph builds a graph on n vertices from an edge list; self-loops and
// duplicates are dropped, out-of-range endpoints grow the vertex set.
func NewGraph(n int, edges [][2]NodeID) *Graph {
	return graph.FromEdges(n, edges)
}

// ReadGraph parses the "n m" + "u v" edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes the edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// RandomGraph samples an Erdős–Rényi G(n,m) graph.
func RandomGraph(n, m int, seed uint64) *Graph {
	return graph.Gnm(n, m, graph.NewRand(seed))
}

// HighGirthGraph returns a graph with girth > minGirth — a guaranteed
// C_ℓ-free instance for every ℓ ≤ minGirth.
func HighGirthGraph(n, m, minGirth int, seed uint64) *Graph {
	return graph.HighGirth(n, m, minGirth, graph.NewRand(seed))
}

// WithPlantedCycle returns host plus a planted simple cycle of length L
// and the cycle's vertices.
func WithPlantedCycle(host *Graph, L int, seed uint64) (*Graph, []NodeID, error) {
	return graph.PlantCycle(host, L, graph.NewRand(seed))
}

// VerifyCycle checks that verts is a simple cycle of length len(verts)
// in g. All witnesses returned by this package already pass it.
func VerifyCycle(g *Graph, verts []NodeID) error {
	return graph.IsSimpleCycle(g, verts, len(verts))
}

// Option tunes a detection run.
type Option func(*config)

type config struct {
	eps        float64
	iterations int
	seed       uint64
	workers    int
	shards     int
	parallel   int
	pipelined  bool
	maxSims    int
	delta      float64
	threshold  int
}

// WithError sets the one-sided error probability ε (default 1/3).
func WithError(eps float64) Option { return func(c *config) { c.eps = eps } }

// WithIterations overrides the number of coloring repetitions (default:
// the paper's ε̂(2k)^{2k}, which is constant in n but very large for
// k ≥ 3 — long-running; see docs/ARCHITECTURE.md).
func WithIterations(k int) Option { return func(c *config) { c.iterations = k } }

// WithSeed fixes the master random seed (runs are reproducible given the
// graph and the seed).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers sets the simulator's goroutine pool size (default
// GOMAXPROCS).
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithShards overrides the receiver-shard count of the simulator's
// parallel delivery phase (default: one shard per worker). Transcripts —
// and therefore results — are bit-identical for every value; the knob
// exists for tuning (see congest.Engine.Shards).
func WithShards(s int) Option { return func(c *config) { c.shards = s } }

// WithThreshold overrides the congestion threshold τ: the per-node
// identifier cap of the classical detectors (Instruction 19 of
// Algorithm 1; the faithful Θ(n^{1-1/k}) value when unset) and of
// DetectDeterministic. Lower thresholds trade detection completeness for
// congestion — the ablation experiments sweep exactly this.
func WithThreshold(tau int) Option { return func(c *config) { c.threshold = tau } }

// WithParallel sets how many independent trials (coloring iterations, or
// amplification attempts in the quantum detectors) run concurrently on
// the shared trial scheduler: 0 or 1 sequential, negative GOMAXPROCS.
// Results are deterministic for a fixed seed regardless of this setting.
func WithParallel(p int) Option { return func(c *config) { c.parallel = p } }

// WithPipelinedSchedule selects the pipelined color-BFS schedule instead
// of the paper's batch schedule (same guarantees, different constants).
func WithPipelinedSchedule() Option { return func(c *config) { c.pipelined = true } }

// WithSimulationBudget caps the classical simulations realizing the
// quantum amplification semantics (quantum detectors only; the round
// ledger is unaffected).
func WithSimulationBudget(sims int) Option { return func(c *config) { c.maxSims = sims } }

// WithQuantumError sets the quantum target error δ (default 1/n²).
func WithQuantumError(delta float64) Option { return func(c *config) { c.delta = delta } }

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Result reports a classical detection run.
type Result struct {
	// Found is true iff a target cycle was detected; Witness then holds a
	// verified simple cycle of the target length.
	Found   bool
	Witness []NodeID
	// FoundLen is the witness length (equals the target length; for
	// bounded-length detection it is the detected ℓ ≤ 2k).
	FoundLen int
	// Rounds is the executed CONGEST round count; Messages the total
	// message count; Bits the model-level bandwidth those messages
	// consumed; MaxCongestion the largest identifier set any node
	// accumulated.
	Rounds        int
	Messages      int64
	Bits          int64
	MaxCongestion int
	// Overflowed reports whether some node hit the congestion threshold τ
	// and discarded its identifier set (detectors with threshold pruning:
	// Detect, DetectBounded, DetectLocal, DetectDeterministic). Overflow
	// can cost detections, never fabricate one.
	Overflowed bool
	// Iterations is the number of coloring repetitions executed (0 for the
	// deterministic detector, which runs a single session).
	Iterations int
}

// Detect decides C_{2k}-freeness on g with the paper's classical
// Algorithm 1 (Theorem 1): one-sided error, O(n^{1-1/k}) rounds.
func Detect(g *Graph, k int, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	res, err := core.DetectEvenCycle(g, k, core.Options{
		Eps:           c.eps,
		MaxIterations: c.iterations,
		Threshold:     c.threshold,
		Seed:          c.seed,
		Workers:       c.workers,
		Shards:        c.shards,
		Parallel:      c.parallel,
		Pipelined:     c.pipelined,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	out := &Result{
		Found:         res.Found,
		Witness:       res.Witness,
		Rounds:        res.Rounds,
		Messages:      res.Messages,
		Bits:          res.Bits,
		MaxCongestion: res.MaxCongestion,
		Overflowed:    res.Overflowed,
		Iterations:    res.IterationsRun,
	}
	if res.Found {
		out.FoundLen = 2 * k
	}
	return out, nil
}

// DetectBounded decides F_{2k}-freeness (any cycle of length ≤ 2k,
// Section 3.5's classical base algorithm).
func DetectBounded(g *Graph, k int, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	res, err := core.DetectBoundedCycle(g, k, core.Options{
		Eps:           c.eps,
		MaxIterations: c.iterations,
		Threshold:     c.threshold,
		Seed:          c.seed,
		Workers:       c.workers,
		Shards:        c.shards,
		Parallel:      c.parallel,
		Pipelined:     c.pipelined,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	return &Result{
		Found:         res.Found,
		Witness:       res.Witness,
		FoundLen:      res.FoundLen,
		Rounds:        res.Rounds,
		Messages:      res.Messages,
		Bits:          res.Bits,
		MaxCongestion: res.MaxCongestion,
		Overflowed:    res.Overflowed,
		Iterations:    res.IterationsRun,
	}, nil
}

// DetectOdd decides C_{2k+1}-freeness with the Section 3.4 randomized
// base algorithm (classically repeated; see DetectOddQuantum for the
// amplified version).
func DetectOdd(g *Graph, k int, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	res, err := lowprob.DetectOdd(g, k, lowprob.OddOptions{
		MaxIterations: c.iterations,
		Seed:          c.seed,
		Workers:       c.workers,
		Shards:        c.shards,
		Parallel:      c.parallel,
		SeedProb:      1, // classical mode: every color-0 node participates
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	out := &Result{
		Found:      res.Found,
		Witness:    res.Witness,
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Iterations: res.IterationsRun,
	}
	if res.Found {
		out.FoundLen = 2*k + 1
	}
	return out, nil
}

// ListCycles runs the listing variant (Section 1.2 of the paper): all
// iterations execute and every distinct C_{2k} discovered (up to rotation
// and reflection) is returned in canonical form, each verified against g.
// With the faithful iteration count, every copy of C_{2k} is listed with
// probability ≥ 1-ε.
func ListCycles(g *Graph, k int, opts ...Option) ([][]NodeID, error) {
	c := buildConfig(opts)
	res, err := core.ListEvenCycles(g, k, core.Options{
		Eps:           c.eps,
		MaxIterations: c.iterations,
		Threshold:     c.threshold,
		Seed:          c.seed,
		Workers:       c.workers,
		Shards:        c.shards,
		Parallel:      c.parallel,
		Pipelined:     c.pipelined,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	return res.Cycles, nil
}

// LocalDetection is the local-detection output (Section 1.2): the usual
// result plus the full set of rejecting nodes — exactly the members of the
// detected cycle, informed by a Θ(k)-round notification protocol.
type LocalDetection struct {
	Result
	// Rejecting lists every node that outputs reject.
	Rejecting []NodeID
}

// DetectLocal decides C_{2k}-freeness and, on detection, upgrades the
// single rejecting node to the local-detection output: every member of the
// discovered cycle rejects.
func DetectLocal(g *Graph, k int, opts ...Option) (*LocalDetection, error) {
	c := buildConfig(opts)
	res, err := core.DetectEvenCycleLocal(g, k, core.Options{
		Eps:           c.eps,
		MaxIterations: c.iterations,
		Threshold:     c.threshold,
		Seed:          c.seed,
		Workers:       c.workers,
		Shards:        c.shards,
		Parallel:      c.parallel,
		Pipelined:     c.pipelined,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	out := &LocalDetection{
		Result: Result{
			Found:         res.Found,
			Witness:       res.Witness,
			Rounds:        res.Rounds,
			Messages:      res.Messages,
			Bits:          res.Bits,
			MaxCongestion: res.MaxCongestion,
			Overflowed:    res.Overflowed,
			Iterations:    res.IterationsRun,
		},
		Rejecting: res.Rejecting,
	}
	if res.Found {
		out.FoundLen = 2 * k
	}
	return out, nil
}

// QuantumResult reports a quantum detection run: the verdict plus the
// charged quantum round ledger (see docs/ARCHITECTURE.md for the simulation
// substitution).
type QuantumResult struct {
	Found   bool
	Witness []NodeID
	// QuantumRounds is the charged cost of Theorem 2's pipeline:
	// decomposition + per-color max of log(1/δ)·O(1/√ε)·(D+T_setup).
	QuantumRounds float64
	// Components is the number of diameter-reduced components processed.
	Components int
	// Eps is the base (Lemma 12) success probability amplified from.
	Eps float64
}

func quantumResult(res *quantum.Result) *QuantumResult {
	return &QuantumResult{
		Found:         res.Found,
		Witness:       res.Witness,
		QuantumRounds: res.QuantumRounds,
		Components:    res.Components,
		Eps:           res.Eps,
	}
}

// DetectQuantum decides C_{2k}-freeness on the quantum CONGEST ledger
// (Theorem 2): Õ(n^{1/2-1/2k}) charged rounds, error 1/poly(n).
func DetectQuantum(g *Graph, k int, opts ...Option) (*QuantumResult, error) {
	c := buildConfig(opts)
	res, err := quantum.DetectEvenCycle(g, k, quantum.Options{
		Delta:             c.delta,
		MaxSims:           c.maxSims,
		AttemptIterations: c.iterations,
		Seed:              c.seed,
		Workers:           c.workers,
		Shards:            c.shards,
		Parallel:          c.parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	return quantumResult(res), nil
}

// DetectOddQuantum decides C_{2k+1}-freeness in Θ̃(√n) charged quantum
// rounds (Section 3.4).
func DetectOddQuantum(g *Graph, k int, opts ...Option) (*QuantumResult, error) {
	c := buildConfig(opts)
	res, err := quantum.DetectOddCycle(g, k, quantum.Options{
		Delta:             c.delta,
		MaxSims:           c.maxSims,
		AttemptIterations: c.iterations,
		Seed:              c.seed,
		Workers:           c.workers,
		Shards:            c.shards,
		Parallel:          c.parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	return quantumResult(res), nil
}

// DetectDeterministic runs the deterministic broadcast-CONGEST detector
// of Fraigniaud–Luce–Magniez–Todinca (arXiv:2412.11195;
// internal/deterministic): every node relays exact-length walk
// announcements under the threshold τ = ⌈2k·n^{1-1/k}⌉, one broadcast
// per round, and a verified walk collision certifies the cycle. The
// one-sided guarantee is deterministic, not probabilistic: a reported
// cycle is real and a C_2k-free input is never rejected, on every run. A
// present C_2k can still be missed — on threshold overflow (Overflowed),
// or when every walk collision reconstructs a self-intersecting walk
// (chord-dense instances, mostly k ≥ 3). The detector draws no
// randomness: the result is a pure function of the graph — WithSeed,
// WithParallel and WithIterations have no effect, while
// WithWorkers/WithShards tune the simulator (bit-identical results) and
// WithThreshold overrides τ.
func DetectDeterministic(g *Graph, k int, opts ...Option) (*Result, error) {
	c := buildConfig(opts)
	res, err := deterministic.Detect(g, k, deterministic.Options{
		Threshold: c.threshold,
		Seed:      c.seed,
		Workers:   c.workers,
		Shards:    c.shards,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	out := &Result{
		Found:         res.Found,
		Witness:       res.Witness,
		Rounds:        res.Rounds,
		Messages:      res.Messages,
		Bits:          res.Bits,
		MaxCongestion: res.MaxCongestion,
		Overflowed:    res.Overflowed,
	}
	if res.Found {
		out.FoundLen = 2 * k
	}
	return out, nil
}

// DetectBoundedQuantum decides F_{2k}-freeness in Õ(n^{1/2-1/2k}) charged
// quantum rounds (Section 3.5), improving van Apeldoorn–de Vos [PODC'22].
func DetectBoundedQuantum(g *Graph, k int, opts ...Option) (*QuantumResult, error) {
	c := buildConfig(opts)
	res, err := quantum.DetectBoundedCycle(g, k, quantum.Options{
		Delta:             c.delta,
		MaxSims:           c.maxSims,
		AttemptIterations: c.iterations,
		Seed:              c.seed,
		Workers:           c.workers,
		Shards:            c.shards,
		Parallel:          c.parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("evencycle: %w", err)
	}
	return quantumResult(res), nil
}
