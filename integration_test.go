package evencycle

// Cross-module integration tests: determinism of full pipelines, agreement
// between the distributed detectors and exact search, and end-to-end
// one-sidedness across every detector.

import (
	"testing"

	"repro/internal/graph"
)

// Runs are reproducible from (graph, seed): identical results including
// round counts and witnesses.
func TestIntegrationDeterminism(t *testing.T) {
	host := RandomGraph(300, 450, 5)
	g, _, err := WithPlantedCycle(host, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Detect(g, 2, WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Found != b.Found || a.Rounds != b.Rounds || a.Messages != b.Messages ||
		a.Iterations != b.Iterations {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Witness {
		if a.Witness[i] != b.Witness[i] {
			t.Fatalf("witnesses differ: %v vs %v", a.Witness, b.Witness)
		}
	}
}

// Parallel execution must not change results (transcript determinism).
func TestIntegrationWorkerInvariance(t *testing.T) {
	host := RandomGraph(2000, 4000, 7)
	g, _, err := WithPlantedCycle(host, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Detect(g, 2, WithSeed(3), WithWorkers(1), WithIterations(6))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Detect(g, 2, WithSeed(3), WithWorkers(8), WithIterations(6))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Found != par.Found || seq.Rounds != par.Rounds || seq.Messages != par.Messages {
		t.Fatalf("workers changed the outcome: %+v vs %+v", seq, par)
	}
}

// Agreement with exact search over a batch of random instances: detection
// implies a cycle exists (always), and existence implies detection at the
// faithful k=2 parameterization (statistically).
func TestIntegrationAgreementWithExactSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("agreement sweep skipped in -short mode")
	}
	rng := graph.NewRand(99)
	var havePresent, detectedPresent int
	for trial := 0; trial < 25; trial++ {
		n := 60 + int(rng.Int32N(80))
		m := n + int(rng.Int32N(int32(n)))
		g := graph.Gnm(n, m, rng)
		truth := graph.HasCycleLen(g, 4)
		res, err := Detect(g, 2, WithSeed(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && !truth {
			t.Fatalf("trial %d: detector claims C_4 but exact search disagrees", trial)
		}
		if res.Found {
			if err := VerifyCycle(g, res.Witness); err != nil {
				t.Fatalf("trial %d: witness: %v", trial, err)
			}
		}
		if truth {
			havePresent++
			if res.Found {
				detectedPresent++
			}
		}
	}
	if havePresent == 0 {
		t.Skip("no C_4-containing instances sampled")
	}
	rate := float64(detectedPresent) / float64(havePresent)
	if rate < 0.66 {
		t.Fatalf("detection rate %.2f (%d/%d) below the 1-ε guarantee",
			rate, detectedPresent, havePresent)
	}
}

// The bounded detector's reported length is minimal-ish and consistent
// with the girth: FoundLen ≥ girth always (it found *a* cycle, which
// cannot be shorter than the shortest).
func TestIntegrationBoundedRespectsGirth(t *testing.T) {
	rng := graph.NewRand(123)
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnm(80, 160, rng)
		girth := graph.Girth(g)
		if girth < 0 || girth > 6 {
			continue
		}
		res, err := DetectBounded(g, 3, WithSeed(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found && res.FoundLen < girth {
			t.Fatalf("trial %d: found C_%d but girth is %d", trial, res.FoundLen, girth)
		}
	}
}

// Every detector family is one-sided on the same guaranteed-free input.
func TestIntegrationAllDetectorsOneSided(t *testing.T) {
	// Girth > 8: free of C_3..C_8, so every detector below must accept.
	g := HighGirthGraph(150, 180, 8, 77)
	if got := graph.Girth(g); got != -1 && got <= 8 {
		t.Fatalf("test setup: girth = %d", got)
	}
	if res, err := Detect(g, 2, WithSeed(1), WithIterations(30)); err != nil || res.Found {
		t.Fatalf("classical k=2: res=%+v err=%v", res, err)
	}
	if res, err := Detect(g, 3, WithSeed(1), WithIterations(30)); err != nil || res.Found {
		t.Fatalf("classical k=3: res=%+v err=%v", res, err)
	}
	if res, err := Detect(g, 4, WithSeed(1), WithIterations(30)); err != nil || res.Found {
		t.Fatalf("classical k=4: res=%+v err=%v", res, err)
	}
	if res, err := DetectBounded(g, 4, WithSeed(1), WithIterations(10)); err != nil || res.Found {
		t.Fatalf("bounded k=4: res=%+v err=%v", res, err)
	}
	if res, err := DetectOdd(g, 2, WithSeed(1), WithIterations(500)); err != nil || res.Found {
		t.Fatalf("odd k=2: res=%+v err=%v", res, err)
	}
	if res, err := DetectOdd(g, 3, WithSeed(1), WithIterations(500)); err != nil || res.Found {
		t.Fatalf("odd k=3: res=%+v err=%v", res, err)
	}
	if res, err := DetectQuantum(g, 2, WithSeed(1), WithSimulationBudget(5), WithIterations(3)); err != nil || res.Found {
		t.Fatalf("quantum k=2: res=%+v err=%v", res, err)
	}
	if res, err := DetectOddQuantum(g, 2, WithSeed(1), WithSimulationBudget(5), WithIterations(50)); err != nil || res.Found {
		t.Fatalf("quantum odd: res=%+v err=%v", res, err)
	}
	if res, err := DetectBoundedQuantum(g, 3, WithSeed(1), WithSimulationBudget(5), WithIterations(3)); err != nil || res.Found {
		t.Fatalf("quantum bounded: res=%+v err=%v", res, err)
	}
}

// Quantum end-to-end on a planted instance with a generous simulation
// budget: finds the cycle and maps the witness back correctly through the
// decomposition components.
func TestIntegrationQuantumEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quantum end-to-end skipped in -short mode")
	}
	host := RandomGraph(400, 500, 31)
	g, _, err := WithPlantedCycle(host, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for seed := uint64(0); seed < 3 && !found; seed++ {
		res, err := DetectQuantum(g, 2, WithSeed(seed), WithSimulationBudget(150))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			found = true
			if err := VerifyCycle(g, res.Witness); err != nil {
				t.Fatalf("witness: %v", err)
			}
		}
	}
	if !found {
		t.Fatal("quantum pipeline never found the planted C_4 across 3 seeds × 150 sims")
	}
}
