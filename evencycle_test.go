package evencycle

import (
	"bytes"
	"testing"
)

func TestFacadeDetectPlanted(t *testing.T) {
	host := RandomGraph(150, 120, 1)
	g, _, err := WithPlantedCycle(host, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(g, 2, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundLen != 4 {
		t.Fatalf("res = %+v", res)
	}
	if err := VerifyCycle(g, res.Witness); err != nil {
		t.Fatalf("witness: %v", err)
	}
	if res.Rounds == 0 || res.Messages == 0 || res.Iterations == 0 {
		t.Fatalf("metrics empty: %+v", res)
	}
}

func TestFacadeOneSided(t *testing.T) {
	g := HighGirthGraph(120, 150, 4, 7)
	res, err := Detect(g, 2, WithSeed(1), WithIterations(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("false positive on girth-5 graph")
	}
}

func TestFacadeBounded(t *testing.T) {
	host := HighGirthGraph(120, 140, 8, 4)
	g, _, err := WithPlantedCycle(host, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectBounded(g, 2, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundLen < 3 || res.FoundLen > 4 {
		t.Fatalf("res = %+v", res)
	}
	if err := VerifyCycle(g, res.Witness); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

func TestFacadeOdd(t *testing.T) {
	host := HighGirthGraph(60, 70, 5, 9)
	g, _, err := WithPlantedCycle(host, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectOdd(g, 2, WithSeed(2), WithIterations(20000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundLen != 5 {
		t.Fatalf("res = %+v", res)
	}
	if err := VerifyCycle(g, res.Witness); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

func TestFacadeQuantum(t *testing.T) {
	host := RandomGraph(120, 100, 21)
	g, _, err := WithPlantedCycle(host, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectQuantum(g, 2, WithSeed(5), WithSimulationBudget(60))
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantumRounds <= 0 || res.Components == 0 || res.Eps <= 0 {
		t.Fatalf("ledger empty: %+v", res)
	}
	if res.Found {
		if err := VerifyCycle(g, res.Witness); err != nil {
			t.Fatalf("witness: %v", err)
		}
	}
}

func TestFacadeQuantumOneSided(t *testing.T) {
	g := HighGirthGraph(100, 120, 4, 31)
	res, err := DetectQuantum(g, 2, WithSeed(1), WithSimulationBudget(8), WithIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("quantum false positive")
	}
	odd := HighGirthGraph(100, 120, 5, 32) // girth ≥ 6: no C_5
	ores, err := DetectOddQuantum(odd, 2, WithSeed(1), WithSimulationBudget(8), WithIterations(100))
	if err != nil {
		t.Fatal(err)
	}
	if ores.Found {
		t.Fatal("quantum odd false positive")
	}
	bres, err := DetectBoundedQuantum(HighGirthGraph(100, 120, 6, 33), 2,
		WithSeed(1), WithSimulationBudget(8), WithIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	if bres.Found {
		t.Fatal("quantum bounded false positive")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := NewGraph(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 4 || h.NumEdges() != 4 {
		t.Fatalf("round trip: %d/%d", h.NumNodes(), h.NumEdges())
	}
	res, err := Detect(h, 2, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("C_4 itself not detected")
	}
}

func TestFacadeListCycles(t *testing.T) {
	// K_{2,3} contains exactly three distinct C_4s.
	g := NewGraph(5, [][2]NodeID{
		{0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4},
	})
	cycles, err := ListCycles(g, 2, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 {
		t.Fatalf("listed %d cycles, want 3: %v", len(cycles), cycles)
	}
	for _, c := range cycles {
		if err := VerifyCycle(g, c); err != nil {
			t.Fatalf("listed cycle invalid: %v", err)
		}
	}
}

func TestFacadeValidation(t *testing.T) {
	g := NewGraph(4, nil)
	if _, err := Detect(g, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Detect(g, 2, WithError(2)); err == nil {
		t.Fatal("eps=2 accepted")
	}
}

func TestFacadeDetectLocal(t *testing.T) {
	host := RandomGraph(150, 130, 51)
	g, _, err := WithPlantedCycle(host, 4, 52)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectLocal(g, 2, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("planted C_4 missed (%d iterations)", res.Iterations)
	}
	if len(res.Rejecting) != 4 {
		t.Fatalf("rejecting set %v, want the 4 cycle members", res.Rejecting)
	}
	member := map[NodeID]bool{}
	for _, v := range res.Witness {
		member[v] = true
	}
	for _, v := range res.Rejecting {
		if !member[v] {
			t.Fatalf("node %d rejects but is not on the witness %v", v, res.Witness)
		}
	}
}
